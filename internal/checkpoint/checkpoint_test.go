package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kdesel/internal/fault"
)

type payload struct {
	Name   string
	Values []float64
	N      int
}

func samplePayload() payload {
	return payload{Name: "model", Values: []float64{1.5, -2.25, 0, 1e-300}, N: 42}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	want := samplePayload()
	if err := WriteFile(path, want, nil); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

func TestAtomicOverwriteKeepsOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := WriteFile(path, samplePayload(), nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new content; the old file must be fully replaced.
	next := payload{Name: "v2", Values: []float64{9}, N: 7}
	if err := WriteFile(path, next, nil); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "v2" {
		t.Fatalf("read %+v after overwrite", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1", len(entries))
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := WriteFile(path, samplePayload(), nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte position in turn; ReadFile must never
	// return a silently wrong payload.
	for i := range b {
		mut := make([]byte, len(b))
		copy(mut, b)
		mut[i] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		err := ReadFile(path, &got)
		if err == nil {
			if reflect.DeepEqual(got, samplePayload()) {
				continue // flip in ignored padding would be fine, but flag it
			}
			t.Fatalf("bit flip at byte %d went undetected and changed the payload", i)
		}
	}
}

func TestCorruptReturnsErrCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := WriteFile(path, samplePayload(), nil); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[len(b)-6] ^= 0xFF // inside the payload
	os.WriteFile(path, b, 0o644)
	var got payload
	if err := ReadFile(path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestVersionError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := WriteFile(path, samplePayload(), nil); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(b[4:8], 99)
	os.WriteFile(path, b, 0o644)
	var got payload
	err := ReadFile(path, &got)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != 99 {
		t.Fatalf("err = %v, want *VersionError{Got: 99}", err)
	}
}

func TestTruncatedAndForeignFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	for _, b := range [][]byte{nil, []byte("short"), []byte("not a checkpoint file at all, but long enough to parse")} {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if err := ReadFile(path, &got); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadFile(%q) = %v, want ErrCorrupt", b, err)
		}
	}
}

func TestInjectedCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	inj := fault.New(1, fault.Schedule{fault.CheckpointCorrupt: {At: []int{1}}})
	if err := WriteFile(path, samplePayload(), inj); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadFile(path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("injected corruption not detected: %v", err)
	}
	// The second write does not fire; recovery by rewriting works.
	if err := WriteFile(path, samplePayload(), inj); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(path, &got); err != nil {
		t.Fatalf("clean rewrite unreadable: %v", err)
	}
	if !reflect.DeepEqual(got, samplePayload()) {
		t.Fatalf("payload mismatch after recovery: %+v", got)
	}
}

func TestMissingFile(t *testing.T) {
	var got payload
	err := ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"), &got)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

// TestMetaRoundTrip: the v2 meta word survives the frame round trip.
func TestMetaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.ckpt")
	want := samplePayload()
	if err := WriteFileMeta(path, want, 0x0203, nil); err != nil {
		t.Fatal(err)
	}
	var got payload
	meta, err := ReadFileMeta(path, &got)
	if err != nil {
		t.Fatal(err)
	}
	if meta != 0x0203 {
		t.Fatalf("meta = %#x, want 0x0203", meta)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

// TestV1FrameBackCompat: version-1 frames (written before the meta word
// existed) still decode, reporting meta 0. The frame is crafted by hand in
// the documented v1 layout: magic, version, payloadLen, payload, crc.
func TestV1FrameBackCompat(t *testing.T) {
	want := samplePayload()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, headerLenV1+body.Len()+4)
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], 1)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(body.Len()))
	copy(buf[headerLenV1:], body.Bytes())
	sum := crc32.Checksum(body.Bytes(), castagnoli)
	binary.LittleEndian.PutUint32(buf[headerLenV1+body.Len():], sum)

	var got payload
	meta, err := UnmarshalMeta(buf, &got)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if meta != 0 {
		t.Fatalf("v1 meta = %d, want 0", meta)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 payload mismatch: got %+v want %+v", got, want)
	}
}
