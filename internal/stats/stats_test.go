package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample variance of this classic example is 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7.0)
	}
	// Population std is 2.
	if s := PopulationStd(xs); !almostEqual(s, 2, 1e-12) {
		t.Errorf("PopulationStd = %g, want 2", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Std(nil) != 0 {
		t.Error("empty-slice moments should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty slice should be NaN")
	}
	if Quantile([]float64{42}, 0.9) != 42 {
		t.Error("quantile of singleton should be the value")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %g, %g; want 2, 4", s.Q1, s.Q3)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Median) || empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

// Property: Running matches the batch computations on random data.
func TestRunningMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			r.Add(xs[i])
		}
		return r.N() == n &&
			almostEqual(r.Mean(), Mean(xs), 1e-9) &&
			almostEqual(r.Variance(), Variance(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestColumnStats(t *testing.T) {
	// Two columns: col0 = {1,3}, col1 = {10,20}.
	data := []float64{1, 10, 3, 20}
	means := ColumnMeans(data, 2)
	if means[0] != 2 || means[1] != 15 {
		t.Errorf("ColumnMeans = %v", means)
	}
	stds := ColumnStds(data, 2)
	if !almostEqual(stds[0], 1, 1e-12) || !almostEqual(stds[1], 5, 1e-12) {
		t.Errorf("ColumnStds = %v, want [1 5]", stds)
	}
}

func TestColumnStatsMatchPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, d = 200, 4
	data := make([]float64, n*d)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := rng.NormFloat64()*float64(j+1) + float64(j)
			data[i*d+j] = v
			cols[j][i] = v
		}
	}
	means := ColumnMeans(data, d)
	stds := ColumnStds(data, d)
	for j := 0; j < d; j++ {
		if !almostEqual(means[j], Mean(cols[j]), 1e-9) {
			t.Errorf("col %d mean mismatch: %g vs %g", j, means[j], Mean(cols[j]))
		}
		if !almostEqual(stds[j], PopulationStd(cols[j]), 1e-9) {
			t.Errorf("col %d std mismatch: %g vs %g", j, stds[j], PopulationStd(cols[j]))
		}
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // perfectly correlated
	if c := Correlation(xs, ys); !almostEqual(c, 1, 1e-12) {
		t.Errorf("Correlation = %g, want 1", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEqual(c, -1, 1e-12) {
		t.Errorf("Correlation = %g, want -1", c)
	}
	if Correlation(xs, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Error("correlation against constant series should be 0")
	}
	if Covariance(xs, []float64{1}) != 0 {
		t.Error("mismatched lengths should give 0 covariance")
	}
}
