// Package stats provides the small set of descriptive statistics the
// estimators and the evaluation harness need: moments, quantiles, five-number
// summaries for boxplots, and an online accumulator.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopulationStd returns the population (biased) standard deviation, the
// quantity Scott's rule uses when computed via the sum/sum-of-squares
// identity on the device (paper §5.2).
func PopulationStd(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	v := sumSq/float64(n) - mean*mean
	if v < 0 { // guard against catastrophic cancellation
		v = 0
	}
	return math.Sqrt(v)
}

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a five-number summary plus mean, the data behind one boxplot in
// the paper's Figures 4, 5, and 6.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
	}
}

// Running accumulates count, mean, and variance online using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the running sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// ColumnMeans returns per-dimension means of row-major data with d columns.
func ColumnMeans(data []float64, d int) []float64 {
	means := make([]float64, d)
	if d == 0 || len(data) == 0 {
		return means
	}
	n := len(data) / d
	for r := 0; r < n; r++ {
		row := data[r*d : (r+1)*d]
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	return means
}

// ColumnStds returns per-dimension population standard deviations of
// row-major data with d columns, computed with the sum / sum-of-squares
// identity used by the device kernels (paper §5.2).
func ColumnStds(data []float64, d int) []float64 {
	stds := make([]float64, d)
	if d == 0 || len(data) == 0 {
		return stds
	}
	n := len(data) / d
	sums := make([]float64, d)
	sumSqs := make([]float64, d)
	for r := 0; r < n; r++ {
		row := data[r*d : (r+1)*d]
		for j, v := range row {
			sums[j] += v
			sumSqs[j] += v * v
		}
	}
	for j := range stds {
		mean := sums[j] / float64(n)
		v := sumSqs[j]/float64(n) - mean*mean
		if v < 0 {
			v = 0
		}
		stds[j] = math.Sqrt(v)
	}
	return stds
}

// Covariance returns the unbiased sample covariance between xs and ys, which
// must have equal length >= 2.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	sum := 0.0
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(n-1)
}

// Correlation returns the Pearson correlation between xs and ys, or 0 when
// either series is degenerate.
func Correlation(xs, ys []float64) float64 {
	sx, sy := Std(xs), Std(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}
