package learner

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// feed drives n observations of a deterministic gradient stream into r,
// applying updates to h.
func feed(t *testing.T, r *RMSprop, h []float64, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grad := make([]float64, len(h))
	for i := 0; i < n; i++ {
		for j := range grad {
			grad[j] = (rng.Float64() - 0.5) * 0.02
		}
		if _, err := r.Observe(grad, h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStateRoundTripBitIdentical(t *testing.T) {
	for _, logMode := range []bool{false, true} {
		cfg := Config{BatchSize: 10, Logarithmic: logMode}
		a, err := NewRMSprop(3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ha := []float64{1, 2, 0.5}
		feed(t, a, ha, 5, 57) // 57 leaves a partial batch of 7 open

		st := a.State()
		b, err := NewRMSprop(3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(st); err != nil {
			t.Fatal(err)
		}
		hb := append([]float64(nil), ha...)

		if !reflect.DeepEqual(a.State(), b.State()) {
			t.Fatalf("log=%v: restored state differs:\n%+v\n%+v", logMode, a.State(), b.State())
		}
		// Future updates must be bit-identical.
		feed(t, a, ha, 9, 33)
		feed(t, b, hb, 9, 33)
		for j := range ha {
			if ha[j] != hb[j] {
				t.Fatalf("log=%v: bandwidths diverged after restore: %v vs %v", logMode, ha, hb)
			}
		}
		if !reflect.DeepEqual(a.State(), b.State()) {
			t.Fatalf("log=%v: states diverged after restore", logMode)
		}
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	r, err := NewRMSprop(2, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1, 1}
	feed(t, r, h, 1, 3)
	st := r.State()
	st.Rates[0] = 123
	st.Batch[0] = 123
	if r.Rates()[0] == 123 || r.State().Batch[0] == 123 {
		t.Fatal("State shares memory with the learner")
	}
}

func TestRestoreValidation(t *testing.T) {
	r, err := NewRMSprop(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := r.State()
	bad := good
	bad.Rates = []float64{1}
	if err := r.Restore(bad); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad = good
	bad.BatchN = -1
	if err := r.Restore(bad); err == nil {
		t.Fatal("negative batchN accepted")
	}
	bad = r.State()
	bad.Batch = []float64{math.NaN(), 0}
	if err := r.Restore(bad); err == nil {
		t.Fatal("NaN batch accumulator accepted")
	}
}

func TestDropBatchQuarantinesOpenBatch(t *testing.T) {
	r, err := NewRMSprop(2, Config{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1, 1}
	feed(t, r, h, 2, 7)
	if r.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", r.Pending())
	}
	if n := r.DropBatch(); n != 7 {
		t.Fatalf("DropBatch() = %d, want 7", n)
	}
	if r.Pending() != 0 {
		t.Fatalf("pending after drop = %d", r.Pending())
	}
	// The dropped gradients must not influence the next update: a learner
	// that never saw them behaves identically from here on.
	fresh, _ := NewRMSprop(2, Config{BatchSize: 10})
	hf := []float64{1, 1}
	feed(t, r, h, 4, 10)
	feed(t, fresh, hf, 4, 10)
	if h[0] != hf[0] || h[1] != hf[1] {
		t.Fatalf("dropped batch leaked into the update: %v vs %v", h, hf)
	}
}

func TestResetReturnsToInitialState(t *testing.T) {
	cfg := Config{BatchSize: 5, InitialRate: 2}
	r, err := NewRMSprop(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1, 1}
	feed(t, r, h, 3, 23)
	r.Reset()
	if r.Pending() != 0 {
		t.Fatalf("pending after reset = %d", r.Pending())
	}
	for j, v := range r.Rates() {
		if v != 2 {
			t.Fatalf("rate[%d] = %g after reset, want 2", j, v)
		}
	}
	st := r.State()
	for j := range st.MsAvg {
		if st.MsAvg[j] != 0 || st.PrevSign[j] != 0 || st.Batch[j] != 0 {
			t.Fatalf("accumulators not cleared: %+v", st)
		}
	}
	if st.Steps == 0 {
		t.Fatal("lifetime step counter should be preserved")
	}
}

func TestConsecutiveFullClamps(t *testing.T) {
	// A huge constant gradient forces the positivity safeguard on every
	// dimension of every update.
	r, err := NewRMSprop(2, Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1, 1}
	grad := []float64{1e6, 1e6}
	for i := 0; i < 4; i++ {
		if _, err := r.Observe(grad, h); err != nil {
			t.Fatal(err)
		}
	}
	if r.ConsecutiveFullClamps() != 4 {
		t.Fatalf("streak = %d, want 4", r.ConsecutiveFullClamps())
	}
	// A tame gradient breaks the streak.
	if _, err := r.Observe([]float64{1e-9, 1e-9}, h); err != nil {
		t.Fatal(err)
	}
	if r.ConsecutiveFullClamps() != 0 {
		t.Fatalf("streak after tame update = %d, want 0", r.ConsecutiveFullClamps())
	}
}
