package learner

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BatchSize != 10 || c.Alpha != 0.9 || c.EtaMin != 1e-6 || c.EtaMax != 50 ||
		c.Inc != 1.2 || c.Dec != 0.5 || c.InitialRate != 1 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestNewRMSpropValidation(t *testing.T) {
	if _, err := NewRMSprop(0, Config{}); err == nil {
		t.Error("d=0 should be rejected")
	}
}

func TestObserveValidation(t *testing.T) {
	r, _ := NewRMSprop(2, Config{})
	if _, err := r.Observe([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("gradient dim mismatch should be rejected")
	}
	if _, err := r.Observe([]float64{math.NaN(), 0}, []float64{1, 1}); err == nil {
		t.Error("NaN gradient should be rejected")
	}
	if _, err := r.Observe([]float64{math.Inf(1), 0}, []float64{1, 1}); err == nil {
		t.Error("infinite gradient should be rejected")
	}
}

func TestMiniBatchTiming(t *testing.T) {
	r, _ := NewRMSprop(1, Config{BatchSize: 3})
	h := []float64{1.0}
	for i := 0; i < 2; i++ {
		updated, err := r.Observe([]float64{0.5}, h)
		if err != nil {
			t.Fatal(err)
		}
		if updated {
			t.Fatalf("update fired after %d observations, batch size 3", i+1)
		}
		if h[0] != 1.0 {
			t.Fatal("bandwidth changed before batch was full")
		}
	}
	updated, err := r.Observe([]float64{0.5}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("update should fire on the third observation")
	}
	if h[0] >= 1.0 {
		t.Errorf("positive gradient should shrink h, got %g", h[0])
	}
	if r.Steps() != 1 || r.Pending() != 0 {
		t.Errorf("Steps=%d Pending=%d", r.Steps(), r.Pending())
	}
}

func TestPositivitySafeguard(t *testing.T) {
	// Huge positive gradients must never push h to zero or below: the
	// update toward zero is capped at half the current value (§4.1).
	r, _ := NewRMSprop(1, Config{BatchSize: 1, InitialRate: 50})
	h := []float64{1.0}
	for i := 0; i < 50; i++ {
		if _, err := r.Observe([]float64{1e6}, h); err != nil {
			t.Fatal(err)
		}
		if h[0] <= 0 {
			t.Fatalf("bandwidth became non-positive at step %d: %g", i, h[0])
		}
	}
	// Exactly halving each step: after k steps h = 2^-k (within fp error).
	if h[0] > math.Pow(0.5, 49) {
		t.Errorf("safeguard should allow halving per step, h = %g", h[0])
	}
}

func TestLogarithmicModeKeepsPositive(t *testing.T) {
	r, _ := NewRMSprop(2, Config{BatchSize: 1, Logarithmic: true, InitialRate: 10})
	h := []float64{0.5, 2}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		g := []float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		if _, err := r.Observe(g, h); err != nil {
			t.Fatal(err)
		}
		for j, v := range h {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("h[%d] = %g at step %d", j, v, i)
			}
		}
	}
}

func TestRateAdaptation(t *testing.T) {
	r, _ := NewRMSprop(1, Config{BatchSize: 1})
	h := []float64{10.0}
	// Consistent gradient direction: rate should grow (up to the cap).
	for i := 0; i < 5; i++ {
		_, _ = r.Observe([]float64{1}, h)
	}
	grew := r.Rates()[0]
	if grew <= 1 {
		t.Errorf("rate should grow under sign agreement, got %g", grew)
	}
	// Direction flip: rate should shrink.
	_, _ = r.Observe([]float64{-1}, h)
	if r.Rates()[0] >= grew {
		t.Errorf("rate should shrink on sign flip: %g -> %g", grew, r.Rates()[0])
	}
}

func TestRateClamping(t *testing.T) {
	cfg := Config{BatchSize: 1, EtaMax: 2, InitialRate: 1}
	r, _ := NewRMSprop(1, cfg)
	h := []float64{100.0}
	for i := 0; i < 30; i++ {
		_, _ = r.Observe([]float64{1}, h)
	}
	if rate := r.Rates()[0]; rate > 2 {
		t.Errorf("rate %g exceeds EtaMax 2", rate)
	}
	cfg = Config{BatchSize: 1, EtaMin: 0.25, InitialRate: 1}
	r, _ = NewRMSprop(1, cfg)
	h = []float64{100.0}
	sign := 1.0
	for i := 0; i < 30; i++ {
		_, _ = r.Observe([]float64{sign}, h)
		sign = -sign
	}
	if rate := r.Rates()[0]; rate < 0.25 {
		t.Errorf("rate %g fell below EtaMin 0.25", rate)
	}
}

func TestFlushPartialBatch(t *testing.T) {
	r, _ := NewRMSprop(1, Config{BatchSize: 10})
	h := []float64{1.0}
	if r.Flush(h) {
		t.Error("flush with no pending gradients should be a no-op")
	}
	_, _ = r.Observe([]float64{1}, h)
	if !r.Flush(h) {
		t.Error("flush with pending gradients should apply")
	}
	if h[0] >= 1.0 {
		t.Error("flush should have applied the pending update")
	}
	if r.Pending() != 0 {
		t.Error("flush should clear the batch")
	}
}

// Online convergence: minimize E[(h-2)^2] from noisy gradients. The learner
// should move h near 2 and keep it there.
func TestRMSpropConvergesOnNoisyQuadratic(t *testing.T) {
	r, _ := NewRMSprop(1, Config{BatchSize: 5, InitialRate: 0.5})
	h := []float64{8.0}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		g := 2*(h[0]-2) + rng.NormFloat64()*0.5
		if _, err := r.Observe([]float64{g}, h); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(h[0]-2) > 0.5 {
		t.Errorf("h = %g, want near 2", h[0])
	}
}

func TestRMSpropLogModeConverges(t *testing.T) {
	r, _ := NewRMSprop(1, Config{BatchSize: 5, InitialRate: 0.5, Logarithmic: true})
	h := []float64{8.0}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		g := 2*(h[0]-2) + rng.NormFloat64()*0.5
		if _, err := r.Observe([]float64{g}, h); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(h[0]-2) > 0.5 {
		t.Errorf("log-mode h = %g, want near 2", h[0])
	}
}

func TestRpropConverges(t *testing.T) {
	r, err := NewRprop(1, Config{InitialRate: 0.5, EtaMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{8.0}
	for i := 0; i < 500; i++ {
		g := 2 * (h[0] - 2)
		if err := r.Observe([]float64{g}, h); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(h[0]-2) > 0.3 {
		t.Errorf("Rprop h = %g, want near 2", h[0])
	}
}

func TestRpropValidation(t *testing.T) {
	if _, err := NewRprop(-1, Config{}); err == nil {
		t.Error("negative d should be rejected")
	}
	r, _ := NewRprop(2, Config{})
	if err := r.Observe([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("dim mismatch should be rejected")
	}
}

func TestRpropKeepsPositive(t *testing.T) {
	r, _ := NewRprop(1, Config{InitialRate: 10})
	h := []float64{1.0}
	for i := 0; i < 100; i++ {
		_ = r.Observe([]float64{1e9}, h)
		if h[0] <= 0 {
			t.Fatalf("h became non-positive at step %d", i)
		}
	}
}
