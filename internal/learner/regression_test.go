package learner

import (
	"math"
	"testing"

	"kdesel/internal/metrics"
)

// TestObserveRejectsNonFiniteGradientWithoutSideEffects is the regression
// test for the partial-accumulation bug: a NaN/Inf in gradient component
// j>0 must not leave components 0..j-1 folded into the open mini-batch.
func TestObserveRejectsNonFiniteGradientWithoutSideEffects(t *testing.T) {
	cfg := Config{BatchSize: 2}
	poisoned, err := NewRMSprop(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewRMSprop(3, cfg)
	if err != nil {
		t.Fatal(err)
	}

	g1 := []float64{1, 2, 3}
	g2 := []float64{-4, 5, -6}
	hPoisoned := []float64{1, 1, 1}
	hClean := []float64{1, 1, 1}

	if _, err := poisoned.Observe(g1, hPoisoned); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Observe(g1, hClean); err != nil {
		t.Fatal(err)
	}

	// The poisoned learner sees a gradient that is finite in component 0
	// but NaN in component 1; it must reject it atomically.
	if _, err := poisoned.Observe([]float64{7, math.NaN(), 9}, hPoisoned); err == nil {
		t.Fatal("expected an error for a NaN gradient component")
	}
	if got := poisoned.Pending(); got != 1 {
		t.Fatalf("rejected gradient changed Pending: got %d, want 1", got)
	}

	// Completing the mini-batch must now produce the exact same update as
	// the learner that never saw the bad gradient.
	for _, l := range []*RMSprop{poisoned, clean} {
		h := hPoisoned
		if l == clean {
			h = hClean
		}
		applied, err := l.Observe(g2, h)
		if err != nil {
			t.Fatal(err)
		}
		if !applied {
			t.Fatal("mini-batch of 2 should have applied an update")
		}
	}
	for j := range hPoisoned {
		if hPoisoned[j] != hClean[j] {
			t.Fatalf("bandwidth diverged after rejected gradient: dim %d got %g, want %g",
				j, hPoisoned[j], hClean[j])
		}
	}
}

// TestRpropRejectsNonFiniteGradient covers the same atomicity contract for
// Rprop, which previously performed no finiteness check at all.
func TestRpropRejectsNonFiniteGradient(t *testing.T) {
	r, err := NewRprop(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1, 1}
	if err := r.Observe([]float64{math.Inf(1), 1}, h); err == nil {
		t.Fatal("expected an error for an Inf gradient component")
	}
	if h[0] != 1 || h[1] != 1 {
		t.Fatalf("rejected gradient mutated the bandwidth: %v", h)
	}
	// Internal adaptation state must be untouched too: the next valid
	// observation behaves exactly like the first one of a fresh learner.
	fresh, err := NewRprop(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hFresh := []float64{1, 1}
	if err := r.Observe([]float64{1, -1}, h); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Observe([]float64{1, -1}, hFresh); err != nil {
		t.Fatal(err)
	}
	if h[0] != hFresh[0] || h[1] != hFresh[1] {
		t.Fatalf("state leaked from rejected gradient: %v vs fresh %v", h, hFresh)
	}
}

// TestLogarithmicUpdateClampedAgainstWedging is the regression test for the
// unsafeguarded exp(log(h) - delta) update: adversarially large gradients
// drive delta to EtaMax (50), and an unclamped step multiplies h by e^∓50
// per update — a handful of updates underflow h to 0 (or overflow to +Inf),
// permanently wedging the bandwidth.
func TestLogarithmicUpdateClampedAgainstWedging(t *testing.T) {
	const steps = 60
	for _, dir := range []float64{+1, -1} {
		l, err := NewRMSprop(1, Config{BatchSize: 1, Logarithmic: true})
		if err != nil {
			t.Fatal(err)
		}
		h := []float64{1}
		prev := h[0]
		for i := 0; i < steps; i++ {
			if _, err := l.Observe([]float64{dir * 1e6}, h); err != nil {
				t.Fatal(err)
			}
			if !(h[0] > 0) || math.IsInf(h[0], 0) || math.IsNaN(h[0]) {
				t.Fatalf("dir %+g: bandwidth wedged to %g after %d updates", dir, h[0], i+1)
			}
			// The §4.1-style safeguard bounds one update to a factor of two
			// in either direction.
			if ratio := h[0] / prev; ratio < 0.5-1e-12 || ratio > 2+1e-12 {
				t.Fatalf("dir %+g: update %d changed h by factor %g, want within [1/2, 2]", dir, i+1, ratio)
			}
			prev = h[0]
		}
		// The learner must still be able to move h back: flip the gradient
		// sign and verify h changes direction rather than staying wedged.
		before := h[0]
		for i := 0; i < 5; i++ {
			if _, err := l.Observe([]float64{-dir * 1e6}, h); err != nil {
				t.Fatal(err)
			}
		}
		moved := h[0] / before
		if dir > 0 && moved <= 1 {
			t.Fatalf("bandwidth did not recover upward: %g -> %g", before, h[0])
		}
		if dir < 0 && moved >= 1 {
			t.Fatalf("bandwidth did not recover downward: %g -> %g", before, h[0])
		}
	}
}

// TestRpropLogarithmicClamped drives Rprop in log mode with a step size at
// EtaMax and checks the same no-wedging guarantee.
func TestRpropLogarithmicClamped(t *testing.T) {
	r, err := NewRprop(1, Config{Logarithmic: true, InitialRate: 50})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1}
	for i := 0; i < 40; i++ {
		if err := r.Observe([]float64{1e3}, h); err != nil {
			t.Fatal(err)
		}
		if !(h[0] > 0) || math.IsInf(h[0], 0) {
			t.Fatalf("Rprop log update wedged h to %g after %d steps", h[0], i+1)
		}
	}
}

// TestConfigExplicitZero verifies the zero-value escape hatch: ExplicitZero
// requests a literal zero for fields whose plain zero value means "use the
// paper default".
func TestConfigExplicitZero(t *testing.T) {
	def := Config{}.withDefaults()
	if def.Alpha != 0.9 || def.EtaMin != 1e-6 || def.InitialRate != 1 {
		t.Fatalf("plain zero values must select paper defaults, got %+v", def)
	}
	exp := Config{Alpha: ExplicitZero, EtaMin: ExplicitZero, InitialRate: ExplicitZero}.withDefaults()
	if exp.Alpha != 0 || exp.EtaMin != 0 || exp.InitialRate != 0 {
		t.Fatalf("ExplicitZero must resolve to literal zero, got %+v", exp)
	}
	// The sentinel must not leak NaN into fields without a meaningful zero.
	odd := Config{EtaMax: math.NaN(), Inc: math.NaN(), Dec: math.NaN()}.withDefaults()
	if odd.EtaMax != 50 || odd.Inc != 1.2 || odd.Dec != 0.5 {
		t.Fatalf("NaN in default-only fields must fall back to defaults, got %+v", odd)
	}

	// Behavioral check: Alpha = ExplicitZero means no running-average
	// memory, so msAvg equals the latest squared gradient exactly and two
	// identical gradients produce two identical update magnitudes.
	l, err := NewRMSprop(1, Config{BatchSize: 1, Alpha: ExplicitZero})
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{100}
	if _, err := l.Observe([]float64{4}, h); err != nil {
		t.Fatal(err)
	}
	first := 100 - h[0]
	want := 1 * 4 / math.Sqrt(4*4+1e-8) // rate·g/sqrt(g²+eps)
	if math.Abs(first-want) > 1e-9 {
		t.Fatalf("alpha=0 update magnitude %g, want %g", first, want)
	}
}

// TestRMSpropInstrumented checks the learner's metrics: update counts,
// safeguard clamps, and the learning-rate spread gauges.
func TestRMSpropInstrumented(t *testing.T) {
	reg := metrics.New()
	l, err := NewRMSprop(2, Config{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(reg)
	h := []float64{1, 1}
	// Huge gradient: the linear positivity safeguard must clamp both dims.
	if _, err := l.Observe([]float64{1e9, 1e9}, h); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["learner.updates"] != 1 {
		t.Fatalf("learner.updates = %d, want 1", snap.Counters["learner.updates"])
	}
	if snap.Counters["learner.safeguard_clamps"] != 2 {
		t.Fatalf("learner.safeguard_clamps = %d, want 2", snap.Counters["learner.safeguard_clamps"])
	}
	if snap.Gauges["learner.rate_min"] <= 0 || snap.Gauges["learner.rate_max"] < snap.Gauges["learner.rate_min"] {
		t.Fatalf("rate gauges inconsistent: %+v", snap.Gauges)
	}
}
