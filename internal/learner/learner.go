// Package learner implements the online learning algorithms behind the
// adaptive bandwidth maintenance of paper §4.1 (Listing 1): mini-batch
// RMSprop [42] with Rprop-style [36] per-dimension learning-rate adaptation,
// the positivity safeguard, and the logarithmic-update variant of
// Appendix D.
package learner

import (
	"fmt"
	"math"

	"kdesel/internal/metrics"
)

// ExplicitZero is a sentinel for Config fields whose literal zero value
// selects a paper default: assigning ExplicitZero (any NaN works) requests
// the actual value zero instead. E.g. Config{Alpha: learner.ExplicitZero}
// disables the running-average smoothing entirely, which plain Alpha: 0
// cannot express because it resolves to the default 0.9.
var ExplicitZero = math.NaN()

// Config carries the tuning parameters of Listing 1. Zero values select the
// paper's defaults; where an actual zero is meaningful (Alpha, EtaMin,
// InitialRate), request it with ExplicitZero.
type Config struct {
	// BatchSize is the mini-batch size N (paper: around 10).
	BatchSize int
	// Alpha is the smoothing rate for the running average of squared
	// gradient magnitudes (paper: 0.9). ExplicitZero requests no smoothing.
	Alpha float64
	// EtaMin and EtaMax bound the per-dimension learning rates
	// (paper/[42]: 1e-6 and 50). EtaMin: ExplicitZero removes the lower
	// bound.
	EtaMin float64
	EtaMax float64
	// Inc and Dec are the multiplicative learning-rate adjustments applied
	// on gradient sign agreement/disagreement (paper/[42]: 1.2 and 0.5).
	Inc float64
	Dec float64
	// InitialRate is the starting per-dimension learning rate (default 1).
	// ExplicitZero freezes the learner at rate zero.
	InitialRate float64
	// Logarithmic switches to Appendix-D updates of ln(h): the gradient is
	// scaled by h (eq. 18), the update is applied in log space, and the
	// positivity safeguard is dropped since exp keeps h positive.
	Logarithmic bool
}

// defaultOrZero resolves the zero-value ambiguity of a Config field: the
// ExplicitZero sentinel (NaN) means the literal value zero, a non-positive
// value means "use the default def", anything else passes through.
func defaultOrZero(v, def float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v <= 0 {
		return def
	}
	return v
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 10
	}
	c.Alpha = defaultOrZero(c.Alpha, 0.9)
	c.EtaMin = defaultOrZero(c.EtaMin, 1e-6)
	if c.EtaMax <= 0 || math.IsNaN(c.EtaMax) {
		c.EtaMax = 50
	}
	if c.Inc <= 0 || math.IsNaN(c.Inc) {
		c.Inc = 1.2
	}
	if c.Dec <= 0 || math.IsNaN(c.Dec) {
		c.Dec = 0.5
	}
	c.InitialRate = defaultOrZero(c.InitialRate, 1)
	return c
}

// RMSprop is the mini-batch adaptive learner of Listing 1. It accumulates
// per-query loss gradients; once a mini-batch is full it rescales the
// averaged gradient by the running magnitude average, adapts per-dimension
// learning rates by sign agreement with the previous batch, and applies the
// update to the bandwidth.
type RMSprop struct {
	cfg         Config
	d           int
	batch       []float64 // accumulated gradient sum
	batchN      int
	msAvg       []float64 // running average of squared gradient magnitudes
	prevSign    []int8    // sign of the previous averaged gradient
	rates       []float64 // per-dimension learning rates
	steps       int       // completed mini-batch updates
	clampStreak int       // consecutive updates where every dimension clamped
	ins         instruments
}

// instruments holds the learner's optional metrics; the zero value (all nil
// instruments) is the uninstrumented no-op state.
type instruments struct {
	updates *metrics.Counter // mini-batch updates applied
	clamps  *metrics.Counter // positivity/log-step safeguards triggered
	rateMin *metrics.Gauge   // smallest current per-dimension learning rate
	rateMax *metrics.Gauge   // largest current per-dimension learning rate
}

func newInstruments(r *metrics.Registry) instruments {
	return instruments{
		updates: r.Counter("learner.updates"),
		clamps:  r.Counter("learner.safeguard_clamps"),
		rateMin: r.Gauge("learner.rate_min"),
		rateMax: r.Gauge("learner.rate_max"),
	}
}

// publishRates exports the learning-rate spread after an update.
func (ins *instruments) publishRates(rates []float64) {
	if ins.rateMin == nil {
		return
	}
	lo, hi := rates[0], rates[0]
	for _, v := range rates[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ins.rateMin.Set(lo)
	ins.rateMax.Set(hi)
}

// NewRMSprop returns a learner for d-dimensional bandwidths.
func NewRMSprop(d int, cfg Config) (*RMSprop, error) {
	if d <= 0 {
		return nil, fmt.Errorf("learner: dimensionality must be positive, got %d", d)
	}
	cfg = cfg.withDefaults()
	r := &RMSprop{
		cfg:      cfg,
		d:        d,
		batch:    make([]float64, d),
		msAvg:    make([]float64, d),
		prevSign: make([]int8, d),
		rates:    make([]float64, d),
	}
	for i := range r.rates {
		r.rates[i] = cfg.InitialRate
	}
	return r, nil
}

// Instrument attaches the learner's metrics (learner.updates,
// learner.safeguard_clamps, learner.rate_min/max) to reg. A nil registry
// detaches: every instrument becomes a no-op again. Call at setup time, not
// concurrently with Observe.
func (r *RMSprop) Instrument(reg *metrics.Registry) {
	r.ins = newInstruments(reg)
}

// BatchSize returns the configured mini-batch size.
func (r *RMSprop) BatchSize() int { return r.cfg.BatchSize }

// Steps returns the number of completed mini-batch updates.
func (r *RMSprop) Steps() int { return r.steps }

// Pending returns the number of gradients accumulated in the open batch.
func (r *RMSprop) Pending() int { return r.batchN }

// Rates returns a copy of the current per-dimension learning rates.
func (r *RMSprop) Rates() []float64 {
	out := make([]float64, r.d)
	copy(out, r.rates)
	return out
}

// Observe folds one query's loss gradient (with respect to the bandwidth h)
// into the open mini-batch and, when the batch is full, applies the update
// to h in place. It reports whether an update was applied. In logarithmic
// mode the chain-rule factor of eq. 18 (multiplication by h) is applied
// internally; callers always pass the plain ∇_H L.
func (r *RMSprop) Observe(grad, h []float64) (bool, error) {
	if len(grad) != r.d || len(h) != r.d {
		return false, fmt.Errorf("learner: gradient/bandwidth dims (%d,%d), want %d", len(grad), len(h), r.d)
	}
	// Validate the whole gradient before touching any state: rejecting at
	// component j after folding components 0..j-1 into the open mini-batch
	// would silently corrupt the next update.
	for j, gj := range grad {
		if math.IsNaN(gj) || math.IsInf(gj, 0) {
			return false, fmt.Errorf("learner: non-finite gradient component %d: %g", j, gj)
		}
	}
	for j, gj := range grad {
		if r.cfg.Logarithmic {
			gj *= h[j] // ∂L/∂ln(h) = ∂L/∂h · h (eq. 18)
		}
		r.batch[j] += gj
	}
	r.batchN++
	if r.batchN < r.cfg.BatchSize {
		return false, nil
	}
	r.apply(h)
	return true, nil
}

// ObserveBatch folds a whole batch of per-query loss gradients — row-major
// n×d, as produced by one batched gradient evaluation over the sample
// (kde.GradientBatch scaled by the loss derivatives) — into the learner,
// applying a bandwidth update to h in place whenever a mini-batch fills.
// It returns the number of updates applied. The result is identical to
// calling Observe once per row in order.
func (r *RMSprop) ObserveBatch(grads, h []float64) (int, error) {
	if len(h) != r.d || len(grads)%r.d != 0 {
		return 0, fmt.Errorf("learner: batch gradients length %d is not a multiple of d=%d (bandwidth %d)", len(grads), r.d, len(h))
	}
	updates := 0
	for o := 0; o < len(grads); o += r.d {
		applied, err := r.Observe(grads[o:o+r.d], h)
		if err != nil {
			return updates, err
		}
		if applied {
			updates++
		}
	}
	return updates, nil
}

// Flush applies a partial mini-batch immediately, used when the caller
// wants the model updated before the batch fills (e.g. at shutdown or in
// tests). It reports whether any gradients were pending.
func (r *RMSprop) Flush(h []float64) bool {
	if r.batchN == 0 {
		return false
	}
	r.apply(h)
	return true
}

// DropBatch quarantines the open mini-batch: the accumulated gradients are
// discarded without being applied, and the number of dropped observations
// is returned. The degradation machinery in internal/core calls this when
// the feedback stream turns out to have been poisoned (non-finite
// gradients, §4.1 safeguard storms) so a partial batch of suspect
// gradients cannot leak into the next update.
func (r *RMSprop) DropBatch() int {
	n := r.batchN
	for j := range r.batch {
		r.batch[j] = 0
	}
	r.batchN = 0
	return n
}

// Reset reinitializes the learner to its freshly constructed state: the
// open mini-batch, running magnitude averages, previous signs, and
// per-dimension rates all return to their initial values (the step counter
// is kept as a lifetime statistic). Used together with a Scott's-rule
// bandwidth reset when the adaptive loop has wedged — restarting the
// learner from a sane bandwidth with stale momentum would immediately
// re-wedge it.
func (r *RMSprop) Reset() {
	for j := 0; j < r.d; j++ {
		r.batch[j] = 0
		r.msAvg[j] = 0
		r.prevSign[j] = 0
		r.rates[j] = r.cfg.InitialRate
	}
	r.batchN = 0
	r.clampStreak = 0
	r.ins.publishRates(r.rates)
}

// ConsecutiveFullClamps returns the number of consecutive completed
// updates in which the safeguard clamped every dimension — the signature
// of a wedged learner (each update is fighting the positivity/log-step
// guard on the whole bandwidth vector). A single-dimension clamp is normal
// adaptation and resets the streak.
func (r *RMSprop) ConsecutiveFullClamps() int { return r.clampStreak }

// State is the complete serializable accumulator state of an RMSprop
// learner, captured by State and reinstated by Restore. Checkpointing it
// makes a restored estimator's future updates bit-identical to the
// original's (internal/core/checkpoint.go).
type State struct {
	Batch       []float64
	BatchN      int
	MsAvg       []float64
	PrevSign    []int8
	Rates       []float64
	Steps       int
	ClampStreak int
}

// State returns a deep copy of the learner's accumulator state.
func (r *RMSprop) State() State {
	st := State{
		Batch:       append([]float64(nil), r.batch...),
		BatchN:      r.batchN,
		MsAvg:       append([]float64(nil), r.msAvg...),
		PrevSign:    append([]int8(nil), r.prevSign...),
		Rates:       append([]float64(nil), r.rates...),
		Steps:       r.steps,
		ClampStreak: r.clampStreak,
	}
	return st
}

// Restore reinstates accumulator state captured by State on a learner of
// the same dimensionality.
func (r *RMSprop) Restore(st State) error {
	if len(st.Batch) != r.d || len(st.MsAvg) != r.d || len(st.PrevSign) != r.d || len(st.Rates) != r.d {
		return fmt.Errorf("learner: state dims (%d,%d,%d,%d), want %d",
			len(st.Batch), len(st.MsAvg), len(st.PrevSign), len(st.Rates), r.d)
	}
	if st.BatchN < 0 || st.Steps < 0 || st.ClampStreak < 0 {
		return fmt.Errorf("learner: negative counters in state (batchN=%d steps=%d streak=%d)",
			st.BatchN, st.Steps, st.ClampStreak)
	}
	for j, v := range st.Batch {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("learner: non-finite batch accumulator %d: %g", j, v)
		}
	}
	copy(r.batch, st.Batch)
	copy(r.msAvg, st.MsAvg)
	copy(r.prevSign, st.PrevSign)
	copy(r.rates, st.Rates)
	r.batchN = st.BatchN
	r.steps = st.Steps
	r.clampStreak = st.ClampStreak
	r.ins.publishRates(r.rates)
	return nil
}

// maxLogStep bounds one logarithmic-mode update of ln(h) to ±ln 2, i.e. a
// per-update change of at most a factor of two in either direction. The
// shrinking half mirrors the §4.1 positivity safeguard exactly (h may at
// most halve per update); the growing half is its symmetric counterpart,
// needed because an unclamped log step of EtaMax (default 50) multiplies h
// by e^50 ≈ 5·10^21 — a few such steps overflow h to +Inf (or underflow it
// to 0), permanently wedging the bandwidth.
const maxLogStep = math.Ln2

// clampLogStep bounds a log-space step and reports whether it clamped.
func clampLogStep(delta float64) (float64, bool) {
	if delta > maxLogStep {
		return maxLogStep, true
	}
	if delta < -maxLogStep {
		return -maxLogStep, true
	}
	return delta, false
}

func (r *RMSprop) apply(h []float64) {
	const eps = 1e-8
	n := float64(r.batchN)
	fullClamp := true
	for j := 0; j < r.d; j++ {
		g := r.batch[j] / n

		// Running average of squared magnitudes (line 14 of Listing 1).
		r.msAvg[j] = r.cfg.Alpha*r.msAvg[j] + (1-r.cfg.Alpha)*g*g

		// Rprop-style learning-rate adaptation (lines 15-16).
		s := signOf(g)
		if r.steps > 0 && s != 0 && r.prevSign[j] != 0 {
			if s == r.prevSign[j] {
				r.rates[j] *= r.cfg.Inc
			} else {
				r.rates[j] *= r.cfg.Dec
			}
			r.rates[j] = math.Min(math.Max(r.rates[j], r.cfg.EtaMin), r.cfg.EtaMax)
		}
		r.prevSign[j] = s

		// Scaled update (line 17).
		delta := r.rates[j] * g / math.Sqrt(r.msAvg[j]+eps)
		if r.cfg.Logarithmic {
			var clamped bool
			delta, clamped = clampLogStep(delta)
			if clamped {
				r.ins.clamps.Inc()
			} else {
				fullClamp = false
			}
			h[j] = math.Exp(math.Log(h[j]) - delta)
		} else {
			next := h[j] - delta
			// Positivity safeguard: restrict updates toward zero to at
			// most half the current value (§4.1).
			if next < h[j]/2 {
				next = h[j] / 2
				r.ins.clamps.Inc()
			} else {
				fullClamp = false
			}
			h[j] = next
		}

		r.batch[j] = 0
	}
	if fullClamp {
		r.clampStreak++
	} else {
		r.clampStreak = 0
	}
	r.batchN = 0
	r.steps++
	r.ins.updates.Inc()
	r.ins.publishRates(r.rates)
}

func signOf(v float64) int8 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Rprop is the batch ancestor of RMSprop [36]: per-dimension step sizes
// adapted by gradient sign agreement, with the update magnitude independent
// of the gradient magnitude. It is provided for the ablation comparing
// learning rules.
type Rprop struct {
	cfg      Config
	d        int
	steps    []float64
	prevSign []int8
	applied  int
}

// NewRprop returns an Rprop learner for d-dimensional bandwidths. The
// Config fields EtaMin/EtaMax bound the step sizes and InitialRate is the
// starting step.
func NewRprop(d int, cfg Config) (*Rprop, error) {
	if d <= 0 {
		return nil, fmt.Errorf("learner: dimensionality must be positive, got %d", d)
	}
	cfg = cfg.withDefaults()
	r := &Rprop{cfg: cfg, d: d, steps: make([]float64, d), prevSign: make([]int8, d)}
	for i := range r.steps {
		r.steps[i] = cfg.InitialRate
	}
	return r, nil
}

// Observe applies one sign-based update of h from grad. Unlike RMSprop it
// updates on every observation (Rprop is a full-batch method; callers
// average gradients themselves if desired).
func (r *Rprop) Observe(grad, h []float64) error {
	if len(grad) != r.d || len(h) != r.d {
		return fmt.Errorf("learner: gradient/bandwidth dims (%d,%d), want %d", len(grad), len(h), r.d)
	}
	// Validate the whole gradient before mutating any state (step sizes,
	// previous signs, or the bandwidth itself) so a rejected observation
	// leaves the learner exactly as it was.
	for j, gj := range grad {
		if math.IsNaN(gj) || math.IsInf(gj, 0) {
			return fmt.Errorf("learner: non-finite gradient component %d: %g", j, gj)
		}
	}
	for j := 0; j < r.d; j++ {
		g := grad[j]
		if r.cfg.Logarithmic {
			g *= h[j]
		}
		s := signOf(g)
		if r.applied > 0 && s != 0 && r.prevSign[j] != 0 {
			if s == r.prevSign[j] {
				r.steps[j] *= r.cfg.Inc
			} else {
				r.steps[j] *= r.cfg.Dec
			}
			r.steps[j] = math.Min(math.Max(r.steps[j], r.cfg.EtaMin), r.cfg.EtaMax)
		}
		r.prevSign[j] = s
		delta := float64(s) * r.steps[j]
		if r.cfg.Logarithmic {
			// Same log-space safeguard as RMSprop.apply: an unclamped step
			// of EtaMax overflows/underflows h and wedges the bandwidth.
			delta, _ = clampLogStep(delta)
			h[j] = math.Exp(math.Log(h[j]) - delta)
		} else {
			next := h[j] - delta
			if next < h[j]/2 {
				next = h[j] / 2
			}
			h[j] = next
		}
	}
	r.applied++
	return nil
}
