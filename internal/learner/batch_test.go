package learner

import (
	"math"
	"math/rand"
	"testing"
)

// TestObserveBatchMatchesObserve drives two identical learners through the
// same gradient stream — one gradient at a time vs. in row-major batches of
// varying size — and requires identical bandwidth trajectories and state.
func TestObserveBatchMatchesObserve(t *testing.T) {
	const d = 4
	cfg := Config{BatchSize: 5}
	one, err := NewRMSprop(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRMSprop(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	hOne := []float64{1, 2, 0.5, 3}
	hMany := append([]float64(nil), hOne...)
	// Mixed batch sizes, deliberately unaligned with BatchSize.
	for _, bn := range []int{1, 3, 7, 2, 5, 4, 8, 1, 6} {
		grads := make([]float64, bn*d)
		for i := range grads {
			grads[i] = rng.NormFloat64()
		}
		updates := 0
		for r := 0; r < bn; r++ {
			applied, err := one.Observe(grads[r*d:(r+1)*d], hOne)
			if err != nil {
				t.Fatal(err)
			}
			if applied {
				updates++
			}
		}
		got, err := many.ObserveBatch(grads, hMany)
		if err != nil {
			t.Fatal(err)
		}
		if got != updates {
			t.Fatalf("batch of %d: ObserveBatch applied %d updates, Observe applied %d", bn, got, updates)
		}
		for j := 0; j < d; j++ {
			if math.Float64bits(hOne[j]) != math.Float64bits(hMany[j]) {
				t.Fatalf("batch of %d: h[%d] diverged: %g vs %g", bn, j, hOne[j], hMany[j])
			}
		}
	}
	if one.Steps() != many.Steps() || one.Pending() != many.Pending() {
		t.Errorf("state diverged: steps %d vs %d, pending %d vs %d",
			one.Steps(), many.Steps(), one.Pending(), many.Pending())
	}
	rOne, rMany := one.Rates(), many.Rates()
	for j := range rOne {
		if math.Float64bits(rOne[j]) != math.Float64bits(rMany[j]) {
			t.Errorf("rates diverged at %d: %g vs %g", j, rOne[j], rMany[j])
		}
	}
}

func TestObserveBatchValidation(t *testing.T) {
	r, _ := NewRMSprop(3, Config{})
	h := []float64{1, 1, 1}
	if _, err := r.ObserveBatch([]float64{1, 2}, h); err == nil {
		t.Error("ragged gradient matrix should be rejected")
	}
	if n, err := r.ObserveBatch(nil, h); err != nil || n != 0 {
		t.Errorf("empty batch: n=%d err=%v, want 0, nil", n, err)
	}
}
