package fault

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	for i := 0; i < 10; i++ {
		if in.Fire(DeviceTransfer) {
			t.Fatal("nil injector fired")
		}
		if err := in.Err(KernelLaunch, "op"); err != nil {
			t.Fatalf("nil injector returned error %v", err)
		}
	}
	if in.Seen(DeviceTransfer) != 0 || in.Fired(DeviceTransfer) != 0 {
		t.Fatal("nil injector counted occurrences")
	}
	if in.String() != "fault: disabled" {
		t.Fatalf("nil String() = %q", in.String())
	}
}

func TestExactOccurrences(t *testing.T) {
	in := New(1, Schedule{DeviceTransfer: {At: []int{3, 5}}})
	var fired []int
	for i := 1; i <= 8; i++ {
		if in.Fire(DeviceTransfer) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired at %v, want [3 5]", fired)
	}
	if in.Seen(DeviceTransfer) != 8 || in.Fired(DeviceTransfer) != 2 {
		t.Fatalf("seen=%d fired=%d", in.Seen(DeviceTransfer), in.Fired(DeviceTransfer))
	}
}

func TestEveryAndLimit(t *testing.T) {
	in := New(1, Schedule{GradientNonFinite: {Every: 4, Limit: 2}})
	var fired []int
	for i := 1; i <= 20; i++ {
		if in.Fire(GradientNonFinite) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 4 || fired[1] != 8 {
		t.Fatalf("fired at %v, want [4 8]", fired)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		in := New(seed, Schedule{KernelLaunch: {Prob: 0.3}})
		var fired []int
		for i := 1; i <= 50; i++ {
			if in.Fire(KernelLaunch) {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	if len(a) == 0 {
		t.Fatal("prob=0.3 never fired in 50 occurrences")
	}
}

func TestErrTypedAndWrapped(t *testing.T) {
	in := New(1, Schedule{DeviceTransfer: {At: []int{1}}})
	err := in.Err(DeviceTransfer, "copy-to-device")
	if err == nil {
		t.Fatal("expected injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not wrap ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *fault.Error", err)
	}
	if fe.Point != DeviceTransfer || fe.Op != "copy-to-device" || fe.Occurrence != 1 {
		t.Fatalf("unexpected error fields: %+v", fe)
	}
	if err := in.Err(DeviceTransfer, "copy-to-device"); err != nil {
		t.Fatalf("occurrence 2 should not fire, got %v", err)
	}
}

func TestUnscheduledPointNeverFires(t *testing.T) {
	in := New(1, Schedule{DeviceTransfer: {Every: 1}})
	for i := 0; i < 10; i++ {
		if in.Fire(CheckpointCorrupt) {
			t.Fatal("unscheduled point fired")
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("transfer:3,5;gradient:every=7,limit=3;launch:prob=0.05;checkpoint:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s[DeviceTransfer]; len(got.At) != 2 || got.At[0] != 3 || got.At[1] != 5 {
		t.Fatalf("transfer rule = %+v", got)
	}
	if got := s[GradientNonFinite]; got.Every != 7 || got.Limit != 3 {
		t.Fatalf("gradient rule = %+v", got)
	}
	if got := s[KernelLaunch]; got.Prob != 0.05 {
		t.Fatalf("launch rule = %+v", got)
	}
	if got := s[CheckpointCorrupt]; len(got.At) != 1 || got.At[0] != 1 {
		t.Fatalf("checkpoint rule = %+v", got)
	}

	for _, bad := range []string{
		"", "transfer", "bogus:1", "transfer:0", "transfer:every=0",
		"transfer:prob=2", "transfer:limit=-1", "transfer:x",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	in, err := FromEnv()
	if err != nil || in != nil {
		t.Fatalf("empty env: injector=%v err=%v", in, err)
	}
	t.Setenv(EnvVar, "transfer:2")
	t.Setenv(EnvSeedVar, "9")
	in, err = FromEnv()
	if err != nil || in == nil {
		t.Fatalf("env spec: injector=%v err=%v", in, err)
	}
	if in.Fire(DeviceTransfer) {
		t.Fatal("occurrence 1 fired")
	}
	if !in.Fire(DeviceTransfer) {
		t.Fatal("occurrence 2 did not fire")
	}
	t.Setenv(EnvVar, "nope:1")
	if _, err := FromEnv(); err == nil {
		t.Fatal("malformed env spec accepted")
	}
	t.Setenv(EnvVar, "transfer:1")
	t.Setenv(EnvSeedVar, "zzz")
	if _, err := FromEnv(); err == nil {
		t.Fatal("malformed env seed accepted")
	}
}

func TestFireDelay(t *testing.T) {
	in := New(1, Schedule{NetDelay: {Delay: 5 * time.Millisecond}})
	for i := 1; i <= 3; i++ {
		if d := in.FireDelay(NetDelay); d != 5*time.Millisecond {
			t.Fatalf("occurrence %d: delay = %v, want 5ms", i, d)
		}
	}
	if in.Seen(NetDelay) != 3 || in.Fired(NetDelay) != 3 {
		t.Fatalf("seen=%d fired=%d, want 3/3", in.Seen(NetDelay), in.Fired(NetDelay))
	}

	var nilIn *Injector
	if d := nilIn.FireDelay(NetDelay); d != 0 {
		t.Fatalf("nil injector delay = %v", d)
	}
}

func TestFireDelaySelective(t *testing.T) {
	in := New(1, Schedule{NetDelay: {Every: 3, Delay: 20 * time.Millisecond, Limit: 2}})
	var stalled []int
	for i := 1; i <= 12; i++ {
		if d := in.FireDelay(NetDelay); d > 0 {
			if d != 20*time.Millisecond {
				t.Fatalf("occurrence %d: delay = %v, want 20ms", i, d)
			}
			stalled = append(stalled, i)
		}
	}
	if len(stalled) != 2 || stalled[0] != 3 || stalled[1] != 6 {
		t.Fatalf("stalled at %v, want [3 6]", stalled)
	}
}

func TestParseDelayTerm(t *testing.T) {
	s, err := ParseSchedule("netdelay:delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	r := s[NetDelay]
	if r.Delay != 5*time.Millisecond {
		t.Fatalf("Delay = %v, want 5ms", r.Delay)
	}
	// A delay-only rule fires on every occurrence.
	in := New(1, s)
	for i := 1; i <= 4; i++ {
		if d := in.FireDelay(NetDelay); d != 5*time.Millisecond {
			t.Fatalf("occurrence %d: delay = %v", i, d)
		}
	}

	s, err = ParseSchedule("netdelay:every=4,delay=250us")
	if err != nil {
		t.Fatal(err)
	}
	if r := s[NetDelay]; r.Every != 4 || r.Delay != 250*time.Microsecond {
		t.Fatalf("rule = %+v", r)
	}

	for _, bad := range []string{"netdelay:delay=", "netdelay:delay=-5ms", "netdelay:delay=0s", "netdelay:delay=fast"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted a bad delay", bad)
		}
	}
}

func TestParseNetworkPoints(t *testing.T) {
	s, err := ParseSchedule("netdrop:prob=0.1;net5xx:every=9;netdelay:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if s[NetDrop].Prob != 0.1 || s[NetError].Every != 9 || s[NetDelay].Delay != time.Millisecond {
		t.Fatalf("schedule = %+v", s)
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	specs := []string{
		"transfer:3,5",
		"gradient:every=7,limit=3",
		"launch:prob=0.05;checkpoint:1",
		"netdelay:delay=5ms",
		"netdelay:every=4,delay=20ms,limit=2",
		"netdrop:prob=0.25;net5xx:every=9,limit=4;netdelay:delay=250us",
		"transfer:5,3,1,every=2,prob=0.5,limit=9,delay=1.5ms",
	}
	for _, spec := range specs {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", spec, err)
		}
		rendered := s.String()
		back, err := ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("ParseSchedule(%q) [rendered from %q]: %v", rendered, spec, err)
		}
		if !reflect.DeepEqual(normalizeSchedule(back), normalizeSchedule(s)) {
			t.Fatalf("round trip of %q: got %+v via %q, want %+v", spec, back, rendered, s)
		}
		// The canonical rendering is a fixed point.
		if again := back.String(); again != rendered {
			t.Fatalf("String not canonical: %q -> %q", rendered, again)
		}
	}
}

func normalizeSchedule(s Schedule) Schedule {
	out := make(Schedule, len(s))
	for p, r := range s {
		at := append([]int(nil), r.At...)
		sort.Ints(at)
		if len(at) == 0 {
			at = nil
		}
		r.At = at
		out[p] = r
	}
	return out
}
