// Package fault is a deterministic, schedule-driven fault injector for the
// estimator pipeline's robustness machinery. The production argument of the
// paper (§1, §7) — an estimator embedded in a query optimizer must degrade
// instead of failing — is only testable if failures can be produced on
// demand, reproducibly. This package provides that: a seedable Injector
// decides, per named fault point, whether the current occurrence of an
// operation should fail, following a Schedule of exact occurrence indices,
// periodic rules, and (seeded) probabilistic rules.
//
// Overhead contract: injection must be optional, exactly like
// internal/metrics. Every method is a no-op on a nil *Injector — Fire
// returns false, Err returns nil — so production code paths carry a single
// nil check and no schedule state. Faults surface as typed errors wrapping
// ErrInjected, which the resilience layer in internal/core treats as the
// transient device-error class (the stand-in for CUDA/OpenCL runtime
// failures); semantic errors never wrap ErrInjected and are never retried.
//
// Schedules are deterministic given the seed: the same schedule against the
// same call sequence fires at the same occurrences, which is what makes the
// chaos suite (internal/core) reproducible.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names an injectable failure site in the pipeline.
type Point string

// The fault points wired into the pipeline.
const (
	// DeviceTransfer fails a host↔device transfer (gpu.CopyToDevice /
	// gpu.CopyFromDevice).
	DeviceTransfer Point = "transfer"
	// KernelLaunch fails a device kernel pass (gpu.Device.Reduce, the
	// error-returning launch site every estimate and gradient goes through).
	KernelLaunch Point = "launch"
	// OptimizerDiverge makes a batch bandwidth optimization (core Build /
	// Reoptimize) report divergence, exercising the Scott's-rule fallback.
	OptimizerDiverge Point = "optimizer"
	// GradientNonFinite corrupts one feedback gradient component to NaN
	// before it reaches the learner.
	GradientNonFinite Point = "gradient"
	// CheckpointCorrupt flips a byte in a written checkpoint so the CRC
	// check fails on restore.
	CheckpointCorrupt Point = "checkpoint"
	// NetDrop severs a network connection mid-request (the HTTP frontend
	// aborts the response stream without writing a status line).
	NetDrop Point = "netdrop"
	// NetError makes the HTTP frontend answer a request with a 500 before
	// any estimator work runs.
	NetError Point = "net5xx"
	// NetDelay stalls a request at the network edge for the rule's Delay
	// before normal processing, simulating congestion or a slow proxy hop.
	// Pair it with a delay= term; a delay-only rule fires on every
	// occurrence.
	NetDelay Point = "netdelay"

	// ShardFail fails one shard of a sharded estimator during scatter, so
	// the gather path's partial-failure degradation (serve from the
	// surviving shards, renormalized, flagged Degraded) can be exercised
	// deterministically. Occurrences count per-shard scatter attempts in
	// shard-index order within each gather.
	ShardFail Point = "shard"
)

// Points lists every defined fault point.
var Points = []Point{DeviceTransfer, KernelLaunch, OptimizerDiverge, GradientNonFinite, CheckpointCorrupt, NetDrop, NetError, NetDelay, ShardFail}

// ErrInjected is the sentinel wrapped by every injected failure. The
// resilience layer retries and degrades only on errors in this class.
var ErrInjected = errors.New("fault: injected failure")

// Error is the typed error returned for one injected failure.
type Error struct {
	// Point is the fault point that fired.
	Point Point
	// Op describes the failed operation (e.g. "copy-to-device").
	Op string
	// Occurrence is the 1-based occurrence index that fired.
	Occurrence int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure in %s (occurrence %d)", e.Point, e.Op, e.Occurrence)
}

// Unwrap marks the error as injected.
func (e *Error) Unwrap() error { return ErrInjected }

// Rule decides which occurrences of a fault point fail. The clauses
// combine with OR: an occurrence fails if it matches At, Every, or the
// probabilistic draw. Limit caps the total injected failures.
type Rule struct {
	// At lists exact 1-based occurrence indices that fail.
	At []int
	// Every fails every Nth occurrence (N, 2N, ...); 0 disables.
	Every int
	// Prob fails each occurrence independently with this probability,
	// drawn from the injector's seeded stream; 0 disables.
	Prob float64
	// Limit caps the number of injected failures for this point; 0 means
	// unlimited.
	Limit int
	// Delay is the stall injected when a latency point (NetDelay) fires.
	// A rule whose only clause is Delay fires on every occurrence; combine
	// with At/Every/Prob/Limit to stall selectively.
	Delay time.Duration
}

// matches reports whether occurrence n (1-based) fires under the rule,
// using rng for the probabilistic clause.
func (r Rule) matches(n int, fired int, rng *rand.Rand) bool {
	if r.Limit > 0 && fired >= r.Limit {
		return false
	}
	for _, a := range r.At {
		if a == n {
			return true
		}
	}
	if r.Every > 0 && n%r.Every == 0 {
		return true
	}
	if r.Prob > 0 && rng.Float64() < r.Prob {
		return true
	}
	// A delay-only rule has no firing clause of its own: it stalls every
	// occurrence (subject to Limit, checked above).
	if r.Delay > 0 && len(r.At) == 0 && r.Every == 0 && r.Prob == 0 {
		return true
	}
	return false
}

// Schedule maps fault points to their rules. Points absent from the
// schedule never fire.
type Schedule map[Point]Rule

// Injector decides fault firings. The nil *Injector is fully functional as
// a no-op (nothing ever fires, nothing is counted); live injectors are safe
// for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules Schedule
	seen  map[Point]int
	fired map[Point]int
}

// New returns an injector firing per the schedule, with the probabilistic
// clauses driven by seed. The schedule map is copied.
func New(seed int64, s Schedule) *Injector {
	rules := make(Schedule, len(s))
	for p, r := range s {
		rules[p] = r
	}
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		seen:  make(map[Point]int),
		fired: make(map[Point]int),
	}
}

// Fire registers one occurrence of point p and reports whether it should
// fail. Always false on a nil injector, with no occurrence counted.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[p]++
	r, ok := in.rules[p]
	if !ok {
		return false
	}
	if r.matches(in.seen[p], in.fired[p], in.rng) {
		in.fired[p]++
		return true
	}
	return false
}

// Err registers one occurrence of point p and returns a typed *Error
// (wrapping ErrInjected) if it fires, nil otherwise. Nil on a nil injector.
func (in *Injector) Err(p Point, op string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.seen[p]++
	n := in.seen[p]
	r, ok := in.rules[p]
	fire := ok && r.matches(n, in.fired[p], in.rng)
	if fire {
		in.fired[p]++
	}
	in.mu.Unlock()
	if !fire {
		return nil
	}
	return &Error{Point: p, Op: op, Occurrence: n}
}

// FireDelay registers one occurrence of point p and returns the stall to
// inject if the rule fires, 0 otherwise. It is the latency counterpart of
// Fire: the caller is expected to sleep for the returned duration. A firing
// rule without a delay= term counts as fired but stalls nothing. Always 0 on
// a nil injector, with no occurrence counted.
func (in *Injector) FireDelay(p Point) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[p]++
	r, ok := in.rules[p]
	if !ok {
		return 0
	}
	if r.matches(in.seen[p], in.fired[p], in.rng) {
		in.fired[p]++
		return r.Delay
	}
	return 0
}

// Seen returns how many occurrences of p were registered; 0 on nil.
func (in *Injector) Seen(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[p]
}

// Fired returns how many failures were injected at p; 0 on nil.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// String renders the schedule compactly for logs.
func (in *Injector) String() string {
	if in == nil {
		return "fault: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return "fault: " + in.rules.String()
}

// String renders the schedule in the canonical ParseSchedule grammar:
// clauses sorted by point name, terms ordered At (ascending), every=,
// prob=, limit=, delay=. The rendering round-trips — ParseSchedule of the
// result reproduces an equivalent schedule — so specs can be logged,
// stored, and replayed.
func (s Schedule) String() string {
	points := make([]string, 0, len(s))
	for p := range s {
		points = append(points, string(p))
	}
	sort.Strings(points)
	clauses := make([]string, 0, len(points))
	for _, p := range points {
		r := s[Point(p)]
		at := append([]int(nil), r.At...)
		sort.Ints(at)
		terms := make([]string, 0, len(at)+4)
		for _, a := range at {
			terms = append(terms, strconv.Itoa(a))
		}
		if r.Every > 0 {
			terms = append(terms, fmt.Sprintf("every=%d", r.Every))
		}
		if r.Prob > 0 {
			terms = append(terms, fmt.Sprintf("prob=%s", strconv.FormatFloat(r.Prob, 'g', -1, 64)))
		}
		if r.Limit > 0 {
			terms = append(terms, fmt.Sprintf("limit=%d", r.Limit))
		}
		if r.Delay > 0 {
			terms = append(terms, fmt.Sprintf("delay=%s", r.Delay))
		}
		clauses = append(clauses, p+":"+strings.Join(terms, ","))
	}
	return strings.Join(clauses, ";")
}

// EnvVar and EnvSeedVar name the environment knobs read by FromEnv.
const (
	EnvVar     = "KDESEL_FAULTS"
	EnvSeedVar = "KDESEL_FAULT_SEED"
)

// FromEnv builds an injector from the KDESEL_FAULTS environment variable
// (see ParseSchedule for the grammar) seeded by KDESEL_FAULT_SEED (default
// 1). It returns nil (injection disabled) when KDESEL_FAULTS is unset or
// empty, and an error only for a malformed spec.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	s, err := ParseSchedule(spec)
	if err != nil {
		return nil, err
	}
	seed := int64(1)
	if v := os.Getenv(EnvSeedVar); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad %s %q: %w", EnvSeedVar, v, err)
		}
	}
	return New(seed, s), nil
}

// ParseSchedule parses the textual schedule grammar:
//
//	spec     = clause *(";" clause)
//	clause   = point ":" term *("," term)
//	term     = INDEX | "every=" N | "prob=" P | "limit=" N | "delay=" DUR
//
// where point is one of transfer, launch, optimizer, gradient, checkpoint,
// netdrop, net5xx, netdelay, shard. Bare integers are exact 1-based occurrence
// indices; DUR is a time.ParseDuration string (e.g. 5ms). A clause whose
// only term is delay= stalls every occurrence. Examples:
//
//	transfer:3,5                 third and fifth transfers fail
//	gradient:every=7,limit=3     every 7th gradient, at most 3 times
//	launch:prob=0.05;checkpoint:1
//	netdelay:delay=5ms           stall every request 5ms at the edge
//	netdelay:every=4,delay=20ms  stall every 4th request 20ms
func ParseSchedule(spec string) (Schedule, error) {
	s := make(Schedule)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q lacks a point: rule part", clause)
		}
		p := Point(strings.TrimSpace(name))
		if !knownPoint(p) {
			return nil, fmt.Errorf("fault: unknown fault point %q", name)
		}
		r := s[p]
		for _, term := range strings.Split(rest, ",") {
			term = strings.TrimSpace(term)
			if term == "" {
				continue
			}
			switch {
			case strings.HasPrefix(term, "every="):
				n, err := strconv.Atoi(term[len("every="):])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("fault: bad term %q in %q", term, clause)
				}
				r.Every = n
			case strings.HasPrefix(term, "prob="):
				pv, err := strconv.ParseFloat(term[len("prob="):], 64)
				if err != nil || pv < 0 || pv > 1 {
					return nil, fmt.Errorf("fault: bad term %q in %q", term, clause)
				}
				r.Prob = pv
			case strings.HasPrefix(term, "limit="):
				n, err := strconv.Atoi(term[len("limit="):])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("fault: bad term %q in %q", term, clause)
				}
				r.Limit = n
			case strings.HasPrefix(term, "delay="):
				d, err := time.ParseDuration(term[len("delay="):])
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("fault: bad term %q in %q", term, clause)
				}
				r.Delay = d
			default:
				n, err := strconv.Atoi(term)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("fault: bad term %q in %q", term, clause)
				}
				r.At = append(r.At, n)
			}
		}
		s[p] = r
	}
	if len(s) == 0 {
		return nil, errors.New("fault: empty schedule")
	}
	return s, nil
}

func knownPoint(p Point) bool {
	for _, k := range Points {
		if p == k {
			return true
		}
	}
	return false
}
