package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdesel/internal/metrics"
	"kdesel/internal/query"
)

// areaEval is a deterministic stand-in evaluator: the "estimate" of a query
// is its 1-D interval length, so every caller can verify it got the result
// for its own query and not a neighbour's.
func areaEval(calls, total *atomic.Int64) EvalFunc {
	return func(qs []query.Range, ests []float64) error {
		if calls != nil {
			calls.Add(1)
		}
		if total != nil {
			total.Add(int64(len(qs)))
		}
		for i, q := range qs {
			ests[i] = q.Hi[0] - q.Lo[0]
		}
		return nil
	}
}

func q1(w float64) query.Range {
	return query.NewRange([]float64{0}, []float64{w})
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	for _, mb := range []int{1, -1} {
		if b := New(areaEval(nil, nil), Config{MaxBatch: mb}); b != nil {
			b.Close()
			t.Errorf("MaxBatch=%d: got live batcher, want nil (disabled)", mb)
		}
	}
	var b *Batcher
	b.Close() // nil Close must be a no-op
}

func TestDefaults(t *testing.T) {
	b := New(areaEval(nil, nil), Config{})
	defer b.Close()
	if got := b.MaxBatch(); got != DefaultMaxBatch {
		t.Errorf("MaxBatch = %d, want %d", got, DefaultMaxBatch)
	}
	if got := b.MaxWait(); got != DefaultMaxWait {
		t.Errorf("MaxWait = %v, want %v", got, DefaultMaxWait)
	}
}

// TestEachCallerGetsOwnResult hammers the batcher with concurrent callers
// carrying distinct queries and checks every caller receives exactly its
// own evaluation.
func TestEachCallerGetsOwnResult(t *testing.T) {
	var calls, total atomic.Int64
	b := New(areaEval(&calls, &total), Config{MaxBatch: 8, MaxWait: 50 * time.Microsecond})
	defer b.Close()

	const callers = 64
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := float64(c + 1)
			for r := 0; r < rounds; r++ {
				got, err := b.Estimate(q1(want))
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("caller %d got %v, want %v", c, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if total.Load() != callers*rounds {
		t.Errorf("evaluated %d queries, want %d", total.Load(), callers*rounds)
	}
	// With 64 callers racing into batches of 8, coalescing must have
	// merged at least some requests: strictly fewer eval calls than
	// queries. (A scheduler that never batches would do one call each.)
	if calls.Load() >= callers*rounds {
		t.Errorf("eval calls = %d for %d queries: no coalescing happened", calls.Load(), callers*rounds)
	}
}

// TestBatchSizeCapped verifies no evaluation exceeds MaxBatch even when the
// queue holds far more requests than one batch.
func TestBatchSizeCapped(t *testing.T) {
	const maxBatch = 4
	var maxSeen atomic.Int64
	block := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	eval := func(qs []query.Range, ests []float64) error {
		once.Do(func() { close(first) })
		<-block // hold the scheduler so the queue piles up
		if n := int64(len(qs)); n > maxSeen.Load() {
			maxSeen.Store(n)
		}
		for i, q := range qs {
			ests[i] = q.Hi[0] - q.Lo[0]
		}
		return nil
	}
	b := New(eval, Config{MaxBatch: maxBatch, MaxWait: time.Microsecond, Queue: 64})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Estimate(q1(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	<-first      // scheduler is now blocked inside eval; queue fills behind it
	close(block) // release; remaining requests must drain in ≤ maxBatch chunks
	wg.Wait()
	b.Close()
	if maxSeen.Load() > maxBatch {
		t.Errorf("largest batch = %d, want ≤ %d", maxSeen.Load(), maxBatch)
	}
}

// TestErrorBroadcast checks a failing evaluation reports the same error to
// every member of the batch.
func TestErrorBroadcast(t *testing.T) {
	boom := errors.New("boom")
	eval := func(qs []query.Range, ests []float64) error { return boom }
	b := New(eval, Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond})
	defer b.Close()

	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Estimate(q1(1)); !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseDrainsAndRejects: Close must serve everything already accepted,
// then reject new callers with ErrClosed — and never deadlock either side.
func TestCloseDrainsAndRejects(t *testing.T) {
	var total atomic.Int64
	b := New(areaEval(nil, &total), Config{MaxBatch: 8, MaxWait: 100 * time.Microsecond})

	const callers = 32
	var wg sync.WaitGroup
	var served, rejected atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := b.Estimate(q1(2))
			switch {
			case errors.Is(err, ErrClosed):
				rejected.Add(1)
			case err != nil:
				t.Errorf("unexpected error: %v", err)
			case got != 2:
				t.Errorf("got %v, want 2", got)
			default:
				served.Add(1)
			}
		}()
	}
	b.Close() // races the callers on purpose
	wg.Wait()
	if served.Load()+rejected.Load() != callers {
		t.Errorf("served %d + rejected %d != %d callers", served.Load(), rejected.Load(), callers)
	}
	if total.Load() != served.Load() {
		t.Errorf("evaluator saw %d queries but %d callers were served", total.Load(), served.Load())
	}
	if _, err := b.Estimate(q1(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Estimate after Close: err = %v, want ErrClosed", err)
	}
	b.Close() // repeated Close must be safe
}

// TestFillDeadlineNotExtendedByStragglers is the regression test for the
// re-arming fill timer: the scheduler used to Reset the MaxWait deadline on
// every straggler arrival, so a steady trickle spaced just under MaxWait
// kept the batch open for up to (MaxBatch−1)·MaxWait. The deadline must be
// armed once per batch, bounding the first request's wait by MaxWait.
func TestFillDeadlineNotExtendedByStragglers(t *testing.T) {
	const maxWait = 50 * time.Millisecond
	b := New(areaEval(nil, nil), Config{MaxBatch: 8, MaxWait: maxWait})
	defer b.Close()

	// Trickle one straggler every MaxWait·0.9: under the buggy behavior each
	// arrival pushed the deadline out another full MaxWait, so it never
	// expired before the batch filled.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(maxWait * 9 / 10)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				wg.Add(1)
				go func() {
					defer wg.Done()
					b.Estimate(q1(1)) //nolint:errcheck // timing probe only
				}()
			}
		}
	}()

	start := time.Now()
	if _, err := b.Estimate(q1(2)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if elapsed >= 2*maxWait {
		t.Errorf("first request waited %v under a straggler trickle, want < %v (2·MaxWait)", elapsed, 2*maxWait)
	}
}

// TestZeroMaxWaitServesImmediately: MaxWait < 0 means a batch is whatever
// is queued — a lone request must not wait for companions.
func TestZeroMaxWaitServesImmediately(t *testing.T) {
	b := New(areaEval(nil, nil), Config{MaxBatch: 64, MaxWait: -1})
	defer b.Close()
	done := make(chan struct{})
	go func() {
		if got, err := b.Estimate(q1(3)); err != nil || got != 3 {
			t.Errorf("got %v, %v; want 3, nil", got, err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lone request with MaxWait<0 did not complete")
	}
}

// TestMetrics verifies the registry wiring: batch-size and wait histograms
// observe once per batch / request, and the queue-depth gauge is readable.
func TestMetrics(t *testing.T) {
	reg := metrics.New()
	var total atomic.Int64
	b := New(areaEval(nil, &total), Config{MaxBatch: 8, MaxWait: 50 * time.Microsecond, Metrics: reg})

	const callers = 24
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Estimate(q1(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	bs := reg.Histogram("serve.batch_size")
	if bs.Count() == 0 {
		t.Error("serve.batch_size never observed")
	}
	if int64(bs.Sum()) != callers {
		t.Errorf("serve.batch_size sum = %v, want %d (every request in exactly one batch)", bs.Sum(), callers)
	}
	if ws := reg.Histogram("serve.wait_seconds"); ws.Count() != callers {
		t.Errorf("serve.wait_seconds count = %d, want %d", ws.Count(), callers)
	}
	if _, ok := reg.Snapshot().Gauges["serve.queue_depth"]; !ok {
		t.Error("serve.queue_depth gauge not registered")
	}
	// Close must unregister the gauge func: a dead batcher neither reports a
	// stale depth nor stays pinned in memory by the leaked closure.
	b.Close()
	if _, ok := reg.Snapshot().Gauges["serve.queue_depth"]; ok {
		t.Error("serve.queue_depth gauge still registered after Close")
	}
}
