package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdesel/internal/metrics"
	"kdesel/internal/query"
)

// gatedEval wraps areaEval with a gate: the first call parks on release
// after signalling entered, so tests can pile requests up behind a stuck
// batch and race cancellations against the queue.
func gatedEval(total *atomic.Int64, entered chan<- struct{}, release <-chan struct{}) EvalFunc {
	inner := areaEval(nil, total)
	var first sync.Once
	return func(qs []query.Range, ests []float64) error {
		var gate bool
		first.Do(func() { gate = true })
		if gate {
			entered <- struct{}{}
			<-release
		}
		return inner(qs, ests)
	}
}

// TestCancelledRequestNeverEvaluated parks the evaluator on its first batch,
// cancels requests stuck in the queue behind it, and verifies the abandoned
// slots are reclaimed at flush time: cancelled callers unblock with ctx.Err(),
// the evaluator never sees their queries, and the serve.cancelled counter
// accounts for every reclaimed slot.
func TestCancelledRequestNeverEvaluated(t *testing.T) {
	var total atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	reg := metrics.New()
	b := New(gatedEval(&total, entered, release), Config{MaxBatch: 4, MaxWait: time.Millisecond, Metrics: reg})
	defer b.Close()

	// Plug: one request that enters evaluation and parks there.
	plugDone := make(chan error, 1)
	go func() {
		_, err := b.Estimate(q1(1))
		plugDone <- err
	}()
	<-entered

	// Pile eight more requests into the queue behind the stuck batch.
	const queued = 8
	const cancel = 5
	ctxs := make([]context.CancelFunc, queued)
	errs := make(chan error, queued)
	var started sync.WaitGroup
	for i := 0; i < queued; i++ {
		ctx, stop := context.WithCancel(context.Background())
		ctxs[i] = stop
		started.Add(1)
		go func(ctx context.Context) {
			started.Done()
			_, err := b.EstimateContext(ctx, q1(1))
			errs <- err
		}(ctx)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the goroutines enqueue

	// Cancel five of the queued requests; their callers must unblock with
	// ctx.Err() well before the evaluator is released.
	var cancelledErrs int
	for i := 0; i < cancel; i++ {
		ctxs[i]()
	}
	deadline := time.After(2 * time.Second)
	for cancelledErrs < cancel {
		select {
		case err := <-errs:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled caller returned %v, want context.Canceled", err)
			}
			cancelledErrs++
		case <-deadline:
			t.Fatalf("only %d/%d cancelled callers unblocked while evaluator parked", cancelledErrs, cancel)
		}
	}

	// Release the evaluator; the survivors and the plug complete normally.
	close(release)
	if err := <-plugDone; err != nil {
		t.Fatalf("plug request: %v", err)
	}
	for i := 0; i < queued-cancel; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("surviving caller returned %v", err)
		}
	}
	for _, stop := range ctxs {
		stop()
	}

	if got, want := total.Load(), int64(1+queued-cancel); got != want {
		t.Errorf("evaluator saw %d queries, want %d (cancelled slots must be reclaimed)", got, want)
	}
	b.Close()
	if got := reg.Snapshot().Counters["serve.cancelled"]; got != cancel {
		t.Errorf("serve.cancelled = %d, want %d", got, cancel)
	}
}

// TestCancelWhileBlockedOnFullQueue cancels a caller that is parked on the
// queue send itself (queue full behind a stuck batch): it must unblock with
// ctx.Err() while still owning its request, and the evaluator must never see
// the query.
func TestCancelWhileBlockedOnFullQueue(t *testing.T) {
	var total atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	b := New(gatedEval(&total, entered, release), Config{MaxBatch: 2, MaxWait: -1, Queue: 1})
	defer b.Close()

	plugDone := make(chan error, 1)
	go func() {
		_, err := b.Estimate(q1(1))
		plugDone <- err
	}()
	<-entered

	// Fill the 1-slot queue, then park one more caller on the send.
	queuedDone := make(chan error, 1)
	go func() {
		_, err := b.Estimate(q1(2))
		queuedDone <- err
	}()
	for len(b.reqs) == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	blockedDone := make(chan error, 1)
	go func() {
		_, err := b.EstimateContext(ctx, q1(3))
		blockedDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it park on the full queue
	stop()
	select {
	case err := <-blockedDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked caller returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("caller parked on a full queue did not honour cancellation")
	}

	close(release)
	if err := <-plugDone; err != nil {
		t.Fatalf("plug: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued: %v", err)
	}
	if got := total.Load(); got != 2 {
		t.Errorf("evaluator saw %d queries, want 2", got)
	}
}

// TestCancelRaceExactAccounting hammers EstimateContext with aggressive
// deadlines racing the scheduler's fill/flush and checks the core invariant:
// a request is evaluated iff its caller received a result, so the evaluator's
// query count equals the callers' result count exactly — nothing lost,
// nothing double-counted — and every issued request is either a result or a
// context error.
func TestCancelRaceExactAccounting(t *testing.T) {
	var total atomic.Int64
	eval := func(qs []query.Range, ests []float64) error {
		total.Add(int64(len(qs)))
		time.Sleep(50 * time.Microsecond) // widen the claim/cancel race window
		for i, q := range qs {
			ests[i] = q.Hi[0] - q.Lo[0]
		}
		return nil
	}
	b := New(eval, Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond})

	const clients = 16
	const perClient = 200
	var ok, cancelled atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				timeout := time.Duration(rng.Intn(300)) * time.Microsecond
				ctx, stop := context.WithTimeout(context.Background(), timeout)
				_, err := b.EstimateContext(ctx, q1(1))
				stop()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected error %v", err)
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	b.Close()

	if got, want := ok.Load()+cancelled.Load(), int64(clients*perClient); got != want {
		t.Fatalf("results + cancellations = %d, want %d issued", got, want)
	}
	if got, want := total.Load(), ok.Load(); got != want {
		t.Errorf("evaluator saw %d queries, callers received %d results (must match exactly)", got, want)
	}
}

// TestCloseDrainsWithCancelledRequests races Close against callers that are
// cancelling mid-queue: Close must still return with every claimed request
// delivered and every abandoned one reclaimed — provably complete in the
// sense that no caller is left parked and the accounting identity holds.
func TestCloseDrainsWithCancelledRequests(t *testing.T) {
	var total atomic.Int64
	b := New(areaEval(nil, &total), Config{MaxBatch: 8, MaxWait: 100 * time.Microsecond})

	const clients = 24
	var ok, cancelled, closed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, stop := context.WithTimeout(context.Background(), time.Duration(50+i*20)*time.Microsecond)
			defer stop()
			_, err := b.EstimateContext(ctx, q1(1))
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				cancelled.Add(1)
			case errors.Is(err, ErrClosed):
				closed.Add(1)
			default:
				t.Errorf("unexpected error %v", err)
			}
		}(c)
	}
	time.Sleep(500 * time.Microsecond)
	b.Close() // races the in-flight cancellations
	wg.Wait() // every caller must have unblocked

	if got, want := ok.Load()+cancelled.Load()+closed.Load(), int64(clients); got != want {
		t.Fatalf("outcomes = %d, want %d issued", got, want)
	}
	if got, want := total.Load(), ok.Load(); got != want {
		t.Errorf("evaluator saw %d queries, callers received %d results", got, want)
	}

	// After Close: an expired context still reports its own error; a live one
	// gets ErrClosed.
	expired, stop := context.WithCancel(context.Background())
	stop()
	if _, err := b.EstimateContext(expired, q1(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("expired ctx after Close: %v, want context.Canceled", err)
	}
	if _, err := b.EstimateContext(context.Background(), q1(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("live ctx after Close: %v, want ErrClosed", err)
	}
}
