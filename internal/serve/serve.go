// Package serve implements request coalescing for the estimate hot path:
// a dynamic batcher that lets many concurrent callers share single fused
// traversals of the sample.
//
// An estimator embedded in a query optimizer is a high-QPS inference
// service, but the KDE estimate is a full map over the sample (paper
// eq. 13) whose cost is nearly independent of how many queries ride along
// one traversal (kde.SelectivityBatch scores a whole query tile against
// each L1-resident sample chunk). The batcher exploits that: concurrent
// Estimate callers enqueue; a single scheduler goroutine drains the queue
// into batches of at most MaxBatch queries, waiting at most MaxWait for
// stragglers, and evaluates each batch with one call to the configured
// evaluator. Under load, throughput approaches MaxBatch queries per
// traversal; an idle service degenerates to single-query latency plus at
// most MaxWait.
//
// The package is deliberately estimator-agnostic — the evaluator is a
// closure — so locking stays with the owner of the model (core.Server
// serializes batch evaluation against Feedback and Checkpoint; the batcher
// itself never blocks enqueueing callers on model work).
package serve

import (
	"context"
	"errors"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"kdesel/internal/metrics"
	"kdesel/internal/query"
)

// ErrClosed is returned by Estimate after Close.
var ErrClosed = errors.New("serve: batcher closed")

// Defaults chosen for an optimizer-embedded service: a 64-query batch is
// one fused traversal tile budget, and 100µs of extra latency is invisible
// next to query execution.
const (
	DefaultMaxBatch = 64
	DefaultMaxWait  = 100 * time.Microsecond
)

// EvalFunc evaluates a batch of validated queries, writing one estimate
// per query into ests (len(ests) == len(qs)). An error applies to the
// whole batch and is reported to every waiting caller.
type EvalFunc func(qs []query.Range, ests []float64) error

// Config tunes a Batcher.
type Config struct {
	// MaxBatch caps the queries coalesced into one evaluation (default
	// DefaultMaxBatch). Values ≤ 1 disable coalescing: New returns nil, and
	// callers fall back to their direct path — the disabled batcher costs
	// nothing.
	MaxBatch int
	// MaxWait bounds how long the scheduler waits for a batch to fill after
	// the first request arrives (default DefaultMaxWait). The deadline is
	// armed once per batch and is NOT extended by straggler arrivals, so the
	// first request's coalescing delay is at most MaxWait even under a
	// steady trickle. Zero waits not at all: a batch is whatever is already
	// queued.
	MaxWait time.Duration
	// Queue is the pending-request channel capacity (default 4·MaxBatch).
	Queue int
	// Metrics, when non-nil, receives serve.queue_depth (gauge),
	// serve.batch_size (histogram), serve.wait_seconds (histogram,
	// enqueue-to-evaluation latency), and serve.cancelled (counter of
	// requests abandoned by their caller before evaluation). Nil disables
	// instrumentation.
	Metrics *metrics.Registry
	// MetricPrefix is prepended to every metric name this batcher registers
	// (e.g. "model.orders(0,1)." yields model.orders(0,1).serve.queue_depth).
	// Batchers sharing one registry MUST use distinct prefixes, or their
	// instruments collide: the queue-depth gauge func of the second would
	// silently replace the first's. Close unregisters the gauge func under
	// the same prefixed name, so a closed batcher neither reports a stale
	// depth nor stays pinned in memory by the leaked closure.
	MetricPrefix string
	// ProfileLabel, when true, tags the scheduler goroutine with the pprof
	// label kdesel_serve=batcher so CPU profiles separate coalescing
	// overhead from kernel time (kdebench -profile-serve).
	ProfileLabel bool
}

func (c Config) maxBatch() int {
	if c.MaxBatch == 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait < 0 {
		return 0
	}
	if c.MaxWait == 0 {
		return DefaultMaxWait
	}
	return c.MaxWait
}

func (c Config) queue(maxBatch int) int {
	if c.Queue > 0 {
		return c.Queue
	}
	return 4 * maxBatch
}

// Lifecycle of an enqueued request, tracked in request.state. Ownership is
// settled by a single CAS race: the scheduler claims the request at flush
// time (reqPending→reqClaimed) and a cancelling caller abandons it
// (reqPending→reqCancelled). Exactly one transition wins, which is what
// keeps batch accounting exact — a request is evaluated (and counted by the
// evaluator) if and only if the claim won.
const (
	reqPending   int32 = iota // enqueued, owner undecided
	reqClaimed                // scheduler won: will evaluate and signal done
	reqCancelled              // caller won: scheduler recycles without evaluating
)

// request is one enqueued Estimate call. done is a reusable 1-slot signal
// channel; the scheduler fills est/err before signalling. done is signalled
// for claimed requests only, so pooled requests always carry an empty
// channel.
type request struct {
	q     query.Range
	enq   time.Time
	est   float64
	err   error
	state atomic.Int32
	done  chan struct{}
}

// Batcher coalesces concurrent Estimate calls into batched evaluations.
// A nil *Batcher is inert — Estimate on it panics by design, so owners
// must route around a disabled batcher (see Config.MaxBatch).
type Batcher struct {
	eval     EvalFunc
	maxBatch int
	maxWait  time.Duration

	// mu gates intake against Close: Estimate sends while holding the read
	// lock, so once Close acquires the write lock and closes done, no sender
	// is mid-enqueue and none can slip in after the scheduler's final drain.
	mu     sync.RWMutex
	closed bool

	reqs    chan *request
	done    chan struct{} // closed by Close; stops intake and the scheduler
	stopped sync.WaitGroup

	pool sync.Pool // *request

	batchSize *metrics.Histogram
	waitSec   *metrics.Histogram
	cancelled *metrics.Counter
	// met/gaugeName identify the queue-depth gauge func registered in New so
	// Close can unregister it (metrics.UnregisterGaugeFunc); nil/"" when no
	// registry is attached.
	met       *metrics.Registry
	gaugeName string
}

// New starts a batcher draining into eval. It returns nil when cfg disables
// coalescing (MaxBatch ≤ 1 but non-zero), so callers can test for the
// disabled state and take their direct path with zero overhead.
func New(eval EvalFunc, cfg Config) *Batcher {
	mb := cfg.maxBatch()
	if mb <= 1 {
		return nil
	}
	b := &Batcher{
		eval:     eval,
		maxBatch: mb,
		maxWait:  cfg.maxWait(),
		reqs:     make(chan *request, cfg.queue(mb)),
		done:     make(chan struct{}),
	}
	if r := cfg.Metrics; r != nil {
		b.batchSize = r.Histogram(cfg.MetricPrefix + "serve.batch_size")
		b.waitSec = r.Histogram(cfg.MetricPrefix + "serve.wait_seconds")
		b.cancelled = r.Counter(cfg.MetricPrefix + "serve.cancelled")
		b.met = r
		b.gaugeName = cfg.MetricPrefix + "serve.queue_depth"
		r.RegisterGaugeFunc(b.gaugeName, func() float64 { return float64(len(b.reqs)) })
	}
	b.stopped.Add(1)
	if cfg.ProfileLabel {
		go pprof.Do(context.Background(), pprof.Labels("kdesel_serve", "batcher"), func(context.Context) {
			b.run()
		})
	} else {
		go b.run()
	}
	return b
}

// MaxBatch returns the configured batch cap.
func (b *Batcher) MaxBatch() int { return b.maxBatch }

// MaxWait returns the configured fill deadline.
func (b *Batcher) MaxWait() time.Duration { return b.maxWait }

// Estimate enqueues q and blocks until its batch has been evaluated,
// returning the query's estimate. Safe for any number of concurrent
// callers. After Close it fails fast with ErrClosed.
func (b *Batcher) Estimate(q query.Range) (float64, error) {
	return b.EstimateContext(context.Background(), q)
}

// EstimateContext is Estimate with cancellation: when ctx expires before the
// request's batch is evaluated, the caller unblocks immediately with
// ctx.Err() and the abandoned slot is reclaimed by the scheduler at flush
// time — a cancelled request never rides in an evaluated batch, so the
// evaluator's query accounting stays exact. If cancellation races the
// scheduler's claim and loses, the batch already evaluated (and counted) the
// query, so its real result is returned instead of ctx.Err().
func (b *Batcher) EstimateContext(ctx context.Context, q query.Range) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrClosed
	}
	r := b.getRequest(q)
	// A full queue blocks here, but only while the scheduler is live: Close
	// cannot take the write lock until this send completes, and the
	// scheduler keeps draining until then. A caller whose context expires
	// while blocked still owns the request (it was never enqueued) and
	// recycles it itself.
	select {
	case b.reqs <- r:
	case <-ctx.Done():
		b.mu.RUnlock()
		b.putRequest(r)
		return 0, ctx.Err()
	}
	b.mu.RUnlock()
	select {
	case <-r.done:
		est, err := r.est, r.err
		b.putRequest(r)
		return est, err
	case <-ctx.Done():
		if r.state.CompareAndSwap(reqPending, reqCancelled) {
			// Cancellation won: the scheduler now owns the request and will
			// recycle it, unevaluated, when its batch flushes. Touching r
			// after this point would race the recycle.
			return 0, ctx.Err()
		}
		// The scheduler claimed the request first: its evaluation is done or
		// imminent, and the query is already counted. Consume the result so
		// the pooled request is never abandoned with a pending done signal.
		<-r.done
		est, err := r.est, r.err
		b.putRequest(r)
		return est, err
	}
}

// getRequest readies a pooled (or fresh) request for q.
func (b *Batcher) getRequest(q query.Range) *request {
	r, _ := b.pool.Get().(*request)
	if r == nil {
		r = &request{done: make(chan struct{}, 1)}
	}
	r.q = q
	r.est, r.err = 0, nil
	r.state.Store(reqPending)
	if b.waitSec != nil {
		r.enq = time.Now()
	}
	return r
}

// putRequest resets a request and returns it to the pool. Callers must own
// the request exclusively (delivered, never-enqueued, or reclaimed-by-
// scheduler states only).
func (b *Batcher) putRequest(r *request) {
	r.q = query.Range{}
	r.state.Store(reqPending)
	b.pool.Put(r)
}

// Close stops intake, serves every already-enqueued request, and waits for
// the scheduler to exit. Concurrent and repeated calls are safe; Estimate
// calls racing Close either complete normally or return ErrClosed. Close
// also unregisters the queue-depth gauge func, so the dead batcher stops
// reporting and is no longer pinned by the registry.
func (b *Batcher) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.done)
	}
	b.mu.Unlock()
	b.stopped.Wait()
	if b.met != nil {
		b.met.UnregisterGaugeFunc(b.gaugeName)
	}
}

// run is the scheduler: collect one batch, evaluate, deliver, repeat.
func (b *Batcher) run() {
	defer b.stopped.Done()
	var (
		batch = make([]*request, 0, b.maxBatch)
		qs    = make([]query.Range, b.maxBatch)
		ests  = make([]float64, b.maxBatch)
		timer = time.NewTimer(time.Hour)
	)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Wait for the batch's first request.
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		case <-b.done:
			// Intake is closed; drain stragglers that won the enqueue race.
			for {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
					continue
				default:
				}
				break
			}
			if len(batch) == 0 {
				return
			}
		}
		// Fill up to MaxBatch: take whatever is already queued without
		// waiting, then wait out one MaxWait deadline for stragglers. The
		// deadline is armed ONCE when the batch opens — straggler arrivals
		// must not extend it, or a steady trickle would hold the first
		// request hostage for up to (MaxBatch−1)·MaxWait.
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		if len(batch) < b.maxBatch && b.maxWait > 0 {
			timer.Reset(b.maxWait)
			armed := true
		fill:
			for len(batch) < b.maxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				case <-timer.C:
					armed = false
					break fill
				case <-b.done:
					break fill
				}
			}
			if armed && !timer.Stop() {
				<-timer.C
			}
		}

		// Claim the batch. Each request is settled by one CAS against its
		// cancelling caller: winners are compacted to the front and ride the
		// evaluation; losers (cancelled while queued) are recycled here, so
		// an abandoned request neither occupies a batch slot nor reaches the
		// evaluator's accounting.
		n := 0
		for i, r := range batch {
			batch[i] = nil
			if !r.state.CompareAndSwap(reqPending, reqClaimed) {
				b.cancelled.Inc()
				b.putRequest(r)
				continue
			}
			if b.waitSec != nil {
				b.waitSec.ObserveDuration(time.Since(r.enq))
			}
			qs[n] = r.q
			batch[n] = r
			n++
		}
		if n > 0 {
			err := b.eval(qs[:n], ests[:n])
			if b.batchSize != nil {
				b.batchSize.Observe(float64(n))
			}
			for i, r := range batch[:n] {
				r.est, r.err = ests[i], err
				r.done <- struct{}{}
				batch[i] = nil
			}
		}
		batch = batch[:0]

		select {
		case <-b.done:
			// Closing: keep looping only while requests remain.
			if len(b.reqs) == 0 {
				return
			}
		default:
		}
	}
}
