package stream

import (
	"math"
	"math/rand"
	"testing"

	"kdesel/internal/query"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, nil); err == nil {
		t.Error("d=0 should be rejected")
	}
	if _, err := New(2, 1, nil); err == nil {
		t.Error("budget 1 should be rejected")
	}
}

func TestInsertValidation(t *testing.T) {
	e, _ := New(2, 4, nil)
	if err := e.Insert([]float64{1}); err == nil {
		t.Error("wrong arity should be rejected")
	}
}

func TestBudgetAndMassConservation(t *testing.T) {
	e, _ := New(1, 8, nil)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if err := e.Insert([]float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
		if e.Centers() > 8 {
			t.Fatalf("budget exceeded: %d centers", e.Centers())
		}
	}
	if e.Total() != 500 {
		t.Errorf("total = %g, want 500", e.Total())
	}
	if err := e.UpdateBandwidth(); err != nil {
		t.Fatal(err)
	}
	// Whole-space mass equals 1 (mass is conserved through merges).
	full := query.NewRange([]float64{-1e9}, []float64{1e9})
	got, err := e.Selectivity(full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("whole-space selectivity = %g, want 1", got)
	}
}

func TestSelectivityNeedsBandwidth(t *testing.T) {
	e, _ := New(1, 4, nil)
	_ = e.Insert([]float64{0})
	if _, err := e.Selectivity(query.NewRange([]float64{-1}, []float64{1})); err == nil {
		t.Error("missing bandwidth should error")
	}
	empty, _ := New(1, 4, nil)
	got, err := empty.Selectivity(query.NewRange([]float64{-1}, []float64{1}))
	if err != nil || got != 0 {
		t.Errorf("empty stream selectivity = %g, %v", got, err)
	}
}

func TestTracksBimodalStream(t *testing.T) {
	// Two clusters arriving interleaved; a 32-center synopsis should
	// estimate the per-cluster fractions well.
	e, _ := New(1, 32, nil)
	rng := rand.New(rand.NewSource(2))
	const n = 4000
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64() * 0.5
		if i%4 == 0 { // 25% in the second cluster
			v += 10
		}
		vals = append(vals, v)
		if err := e.Insert([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.UpdateBandwidth(); err != nil {
		t.Fatal(err)
	}
	q := query.NewRange([]float64{8}, []float64{12})
	got, err := e.Selectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	actual := 0.0
	for _, v := range vals {
		if v >= 8 && v <= 12 {
			actual++
		}
	}
	actual /= n
	if math.Abs(got-actual) > 0.05 {
		t.Errorf("cluster fraction: est %g vs actual %g", got, actual)
	}
}

func TestDuplicateHeavyStreamKeepsWeight(t *testing.T) {
	// 90% of the stream is the same value; the synopsis must retain that
	// weight rather than a sample's worth.
	e, _ := New(1, 8, nil)
	rng := rand.New(rand.NewSource(3))
	const n = 1000
	for i := 0; i < n; i++ {
		v := 5.0
		if i%10 == 0 {
			v = rng.Float64() * 100
		}
		if err := e.Insert([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	_ = e.SetBandwidth([]float64{0.1})
	q := query.NewRange([]float64{4}, []float64{6})
	got, _ := e.Selectivity(q)
	if math.Abs(got-0.9) > 0.06 {
		t.Errorf("duplicate-heavy mass = %g, want ~0.9", got)
	}
}

func TestBandwidthAccessors(t *testing.T) {
	e, _ := New(2, 4, nil)
	if e.Bandwidth() != nil {
		t.Error("unset bandwidth should be nil")
	}
	if err := e.SetBandwidth([]float64{1}); err == nil {
		t.Error("wrong arity should be rejected")
	}
	if err := e.SetBandwidth([]float64{1, -1}); err == nil {
		t.Error("negative bandwidth should be rejected")
	}
	if err := e.SetBandwidth([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	h := e.Bandwidth()
	h[0] = 99
	if e.Bandwidth()[0] != 1 {
		t.Error("Bandwidth leaked internal storage")
	}
	if err := e.UpdateBandwidth(); err == nil {
		t.Error("UpdateBandwidth with <2 centers should error")
	}
}
