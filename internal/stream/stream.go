// Package stream implements a resource-bounded streaming KDE in the spirit
// of the Cluster Kernels of Heinz & Seeger [18], which the paper's related
// work (§2.3) lists as a further KDE use case. Instead of maintaining a
// fixed-size random sample (the reservoir approach of §4.2), the model
// keeps m weighted kernel centers; every arriving tuple becomes a center,
// and when the budget overflows the two closest centers merge into their
// weighted mean. The result is a deterministic, insert-only synopsis that
// adapts its resolution to the data and never discards mass.
//
// It complements the core estimator: reservoir sampling is unbiased but
// forgets duplicates' weight; cluster kernels keep total mass exact, at the
// cost of merge-induced smoothing.
package stream

import (
	"fmt"
	"math"

	"kdesel/internal/kernel"
	"kdesel/internal/query"
)

// Estimator is a streaming KDE over weighted kernel centers. It is not
// safe for concurrent use.
type Estimator struct {
	d       int
	m       int // center budget
	kern    kernel.Kernel
	centers []center
	total   float64 // tuples absorbed
	h       []float64
}

type center struct {
	x  []float64
	w  float64
	m2 []float64 // per-dimension sum of squared deviations (cluster spread)
}

// New returns a streaming estimator over d dimensions with a budget of m
// centers. A nil kernel defaults to the Gaussian. The bandwidth must be
// set (or refreshed) by the caller; UpdateBandwidth derives a Scott-style
// bandwidth from the current centers.
func New(d, m int, kern kernel.Kernel) (*Estimator, error) {
	if d <= 0 {
		return nil, fmt.Errorf("stream: dimensionality must be positive, got %d", d)
	}
	if m < 2 {
		return nil, fmt.Errorf("stream: center budget must be at least 2, got %d", m)
	}
	if kern == nil {
		kern = kernel.Gaussian{}
	}
	return &Estimator{d: d, m: m, kern: kern}, nil
}

// Dims returns the dimensionality.
func (e *Estimator) Dims() int { return e.d }

// Centers returns the current number of kernel centers.
func (e *Estimator) Centers() int { return len(e.centers) }

// Total returns the number of absorbed tuples (the preserved total mass).
func (e *Estimator) Total() float64 { return e.total }

// Insert absorbs one tuple: it becomes a unit-weight center, and if the
// budget overflows, the two closest centers merge into their weighted mean.
func (e *Estimator) Insert(row []float64) error {
	if len(row) != e.d {
		return fmt.Errorf("stream: row has %d dims, want %d", len(row), e.d)
	}
	x := make([]float64, e.d)
	copy(x, row)
	e.centers = append(e.centers, center{x: x, w: 1, m2: make([]float64, e.d)})
	e.total++
	if len(e.centers) > e.m {
		e.mergeClosest()
	}
	return nil
}

// mergeClosest finds the closest pair of centers and merges them. The scan
// is O(m²); budgets are small synopsis sizes, and a real deployment would
// amortize with a spatial index.
func (e *Estimator) mergeClosest() {
	bi, bj, best := 0, 1, math.Inf(1)
	for i := 0; i < len(e.centers); i++ {
		for j := i + 1; j < len(e.centers); j++ {
			d := sqDist(e.centers[i].x, e.centers[j].x)
			if d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	a, b := e.centers[bi], e.centers[bj]
	w := a.w + b.w
	for k := range a.x {
		// Chan et al. parallel-variance merge: the combined spread is the
		// two spreads plus the between-means term.
		d := a.x[k] - b.x[k]
		a.m2[k] += b.m2[k] + a.w*b.w/w*d*d
		a.x[k] = (a.x[k]*a.w + b.x[k]*b.w) / w
	}
	a.w = w
	e.centers[bi] = a
	e.centers[bj] = e.centers[len(e.centers)-1]
	e.centers = e.centers[:len(e.centers)-1]
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SetBandwidth installs a diagonal bandwidth.
func (e *Estimator) SetBandwidth(h []float64) error {
	if len(h) != e.d {
		return fmt.Errorf("stream: bandwidth has %d dims, want %d", len(h), e.d)
	}
	for i, v := range h {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: bandwidth[%d] = %g invalid", i, v)
		}
	}
	e.h = append(e.h[:0], h...)
	return nil
}

// Bandwidth returns a copy of the current bandwidth, or nil if unset.
func (e *Estimator) Bandwidth() []float64 {
	if e.h == nil {
		return nil
	}
	out := make([]float64, e.d)
	copy(out, e.h)
	return out
}

// UpdateBandwidth derives a Scott-style bandwidth from the weighted
// centers: h_j = n^(−1/(d+4))·σ_j with weighted moments, where n is the
// total absorbed count — each center stands for w real tuples, so the
// stream's full resolution applies (the cluster spread is accounted
// for separately at estimation time).
func (e *Estimator) UpdateBandwidth() error {
	if len(e.centers) < 2 {
		return fmt.Errorf("stream: need at least two centers, have %d", len(e.centers))
	}
	sumW := 0.0
	mean := make([]float64, e.d)
	for _, c := range e.centers {
		sumW += c.w
		for j, v := range c.x {
			mean[j] += c.w * v
		}
	}
	for j := range mean {
		mean[j] /= sumW
	}
	h := make([]float64, e.d)
	factor := math.Pow(e.total, -1.0/float64(e.d+4))
	for j := 0; j < e.d; j++ {
		v := 0.0
		for _, c := range e.centers {
			dv := c.x[j] - mean[j]
			v += c.w * dv * dv
		}
		sigma := math.Sqrt(v / sumW)
		h[j] = factor * sigma
		if !(h[j] > 0) {
			h[j] = 1e-3
		}
	}
	return e.SetBandwidth(h)
}

// Selectivity estimates the fraction of absorbed tuples inside q as the
// weight-averaged kernel mass over the centers.
func (e *Estimator) Selectivity(q query.Range) (float64, error) {
	if q.Dims() != e.d {
		return 0, fmt.Errorf("stream: query has %d dims, want %d", q.Dims(), e.d)
	}
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if e.total == 0 {
		return 0, nil
	}
	if e.h == nil {
		return 0, fmt.Errorf("stream: bandwidth not set")
	}
	sum := 0.0
	for _, c := range e.centers {
		m := 1.0
		for j := 0; j < e.d; j++ {
			// A center of weight w and spread σ² stands for w tuples; its
			// kernel sum is approximated by one kernel whose (Gaussian)
			// variance is the base bandwidth convolved with the spread.
			heff := math.Sqrt(e.h[j]*e.h[j] + c.m2[j]/c.w)
			m *= e.kern.Mass(q.Lo[j], q.Hi[j], c.x[j], heff)
			if m == 0 {
				break
			}
		}
		sum += c.w * m
	}
	return sum / e.total, nil
}
