// Package join implements the join selectivity estimation directions the
// paper sketches as future work (§8):
//
//   - Key–foreign-key joins: build a KDE over a sample drawn directly from
//     the join result (via the sampling-over-joins approach of Chaudhuri,
//     Motwani & Narasayya [9]) and answer range queries over the combined
//     attribute space with the ordinary estimator.
//
//   - Band (theta) joins over continuous attributes: the paper observes
//     that two continuous KDEs should admit a joint integral. For Gaussian
//     kernels with diagonal bandwidths this integral has a closed form:
//     if A is drawn from KDE1 on attribute a and B from KDE2 on attribute
//     b, then A−B is a mixture of Gaussians N(t_i−s_j, h_a²+h_b²), so
//     P(|A−B| ≤ ε) is an average of Φ-differences over all sample pairs.
package join

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"kdesel/internal/kde"
	"kdesel/internal/query"
	"kdesel/internal/table"
)

// SampleResult joins a sample of the FK side against the PK side and
// returns joined rows (FK attributes followed by PK attributes).
//
// fkTab's column fkCol references pkTab's column pkCol, whose values must
// be unique (a key). n joined rows are drawn uniformly; FK rows without a
// match are skipped, which matches the semantics of sampling the join
// result of a foreign key with referential integrity (and degrades to
// rejection sampling otherwise).
func SampleResult(fkTab, pkTab *table.Table, fkCol, pkCol, n int, rng *rand.Rand) ([][]float64, error) {
	if fkTab == nil || pkTab == nil {
		return nil, errors.New("join: nil table")
	}
	if rng == nil {
		return nil, errors.New("join: nil random source")
	}
	if fkCol < 0 || fkCol >= fkTab.Dims() {
		return nil, fmt.Errorf("join: fk column %d out of range [0,%d)", fkCol, fkTab.Dims())
	}
	if pkCol < 0 || pkCol >= pkTab.Dims() {
		return nil, fmt.Errorf("join: pk column %d out of range [0,%d)", pkCol, pkTab.Dims())
	}
	if fkTab.Len() == 0 || pkTab.Len() == 0 {
		return nil, errors.New("join: empty input table")
	}
	// Index the key side. Duplicate keys would make the "sample the FK
	// side uniformly" shortcut biased, so they are rejected.
	index := make(map[float64]int, pkTab.Len())
	for i := 0; i < pkTab.Len(); i++ {
		k := pkTab.Row(i)[pkCol]
		if _, dup := index[k]; dup {
			return nil, fmt.Errorf("join: key column %d has duplicate value %g", pkCol, k)
		}
		index[k] = i
	}
	out := make([][]float64, 0, n)
	// Because each FK row joins with at most one PK row, uniform sampling
	// of the join result is uniform sampling of matching FK rows [9].
	misses := 0
	for len(out) < n && misses < 100*n+1000 {
		fkRow := fkTab.Row(rng.Intn(fkTab.Len()))
		pkIdx, ok := index[fkRow[fkCol]]
		if !ok {
			misses++
			continue
		}
		joined := make([]float64, 0, fkTab.Dims()+pkTab.Dims())
		joined = append(joined, fkRow...)
		joined = append(joined, pkTab.Row(pkIdx)...)
		out = append(out, joined)
	}
	if len(out) == 0 {
		return nil, errors.New("join: no matching rows (is the foreign key valid?)")
	}
	return out, nil
}

// Estimator answers range queries over the combined attribute space of a
// key–foreign-key join, backed by a KDE over a join-result sample.
type Estimator struct {
	est *kde.Estimator
}

// BuildEstimator samples the fkTab ⋈ pkTab join result and fits a KDE with
// Scott's-rule bandwidth over the combined attributes. The resulting model
// can be tuned further exactly like a base-table model (the sample is a
// plain KDE sample), e.g. via kde.Objective with join feedback.
func BuildEstimator(fkTab, pkTab *table.Table, fkCol, pkCol, sampleSize int, rng *rand.Rand) (*Estimator, error) {
	rows, err := SampleResult(fkTab, pkTab, fkCol, pkCol, sampleSize, rng)
	if err != nil {
		return nil, err
	}
	d := fkTab.Dims() + pkTab.Dims()
	e, err := kde.New(d, nil)
	if err != nil {
		return nil, err
	}
	if err := e.SetSampleRows(rows); err != nil {
		return nil, err
	}
	if err := e.UseScottBandwidth(); err != nil {
		return nil, err
	}
	return &Estimator{est: e}, nil
}

// Dims returns the combined dimensionality.
func (e *Estimator) Dims() int { return e.est.Dims() }

// KDE exposes the underlying model for bandwidth tuning.
func (e *Estimator) KDE() *kde.Estimator { return e.est }

// Selectivity estimates the fraction of join-result rows inside q (the
// combined space: FK attributes first, then PK attributes).
func (e *Estimator) Selectivity(q query.Range) (float64, error) {
	return e.est.Selectivity(q)
}

// BandSelectivity estimates the selectivity of the band join
// |R.a − S.b| ≤ eps over the cross product R × S, given KDE models of the
// two relations: the closed-form joint integral
//
//	P(|A−B| ≤ ε) = (1/(s₁s₂)) Σ_{i,j} [Φ((ε−δ_ij)/σ) − Φ((−ε−δ_ij)/σ)]
//
// with δ_ij = t_i[a] − s_j[b] and σ² = h_a² + h_b². Both models must use
// Gaussian kernels (the closed form relies on Gaussian convolution).
func BandSelectivity(r, s *kde.Estimator, aCol, bCol int, eps float64) (float64, error) {
	if r == nil || s == nil {
		return 0, errors.New("join: nil estimator")
	}
	if aCol < 0 || aCol >= r.Dims() {
		return 0, fmt.Errorf("join: column %d out of range [0,%d)", aCol, r.Dims())
	}
	if bCol < 0 || bCol >= s.Dims() {
		return 0, fmt.Errorf("join: column %d out of range [0,%d)", bCol, s.Dims())
	}
	if eps < 0 {
		return 0, fmt.Errorf("join: negative band width %g", eps)
	}
	if r.Kernel().Name() != "gaussian" || s.Kernel().Name() != "gaussian" {
		return 0, errors.New("join: band selectivity requires Gaussian kernels")
	}
	hr := r.Bandwidth()
	hs := s.Bandwidth()
	if hr == nil || hs == nil || len(hr) == 0 || len(hs) == 0 {
		return 0, errors.New("join: estimators need bandwidths")
	}
	sigma := math.Sqrt(hr[aCol]*hr[aCol] + hs[bCol]*hs[bCol])
	if !(sigma > 0) {
		return 0, errors.New("join: degenerate combined bandwidth")
	}
	sr, ss := r.Size(), s.Size()
	if sr == 0 || ss == 0 {
		return 0, errors.New("join: empty sample")
	}
	inv := 1 / (math.Sqrt2 * sigma)
	sum := 0.0
	for i := 0; i < sr; i++ {
		ti := r.Point(i)[aCol]
		for j := 0; j < ss; j++ {
			delta := ti - s.Point(j)[bCol]
			sum += 0.5 * (math.Erf((eps-delta)*inv) - math.Erf((-eps-delta)*inv))
		}
	}
	return sum / float64(sr*ss), nil
}

// EquiJoinSize estimates |R ⋈_{R.a = S.b} S| for continuous attributes by
// evaluating the band integral at a small ε derived from the combined
// bandwidth and converting the density to an expected pair count:
// |R|·|S|·P(|A−B| ≤ ε) / (2ε) approximates |R|·|S|·∫ p_A(x)·p_B(x) dx · w,
// where w is the equality tolerance width the caller considers "equal"
// (for truly continuous data exact equality has measure zero, so a
// tolerance is part of the query's meaning).
func EquiJoinSize(r, s *kde.Estimator, aCol, bCol int, nR, nS int, tolerance float64) (float64, error) {
	if tolerance <= 0 {
		return 0, fmt.Errorf("join: tolerance must be positive, got %g", tolerance)
	}
	p, err := BandSelectivity(r, s, aCol, bCol, tolerance/2)
	if err != nil {
		return 0, err
	}
	return p * float64(nR) * float64(nS), nil
}
