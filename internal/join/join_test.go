package join

import (
	"math"
	"math/rand"
	"testing"

	"kdesel/internal/kde"
	"kdesel/internal/kernel"
	"kdesel/internal/query"
	"kdesel/internal/table"
)

// buildPKFK creates a key table (id, weight) and a fact table (fk, value)
// with value correlated to the referenced weight.
func buildPKFK(t *testing.T, keys, facts int, seed int64) (fk, pk *table.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pk, err := table.New(2)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, keys)
	for i := 0; i < keys; i++ {
		weights[i] = rng.Float64() * 10
		if err := pk.Insert([]float64{float64(i), weights[i]}); err != nil {
			t.Fatal(err)
		}
	}
	fk, err = table.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < facts; i++ {
		k := rng.Intn(keys)
		if err := fk.Insert([]float64{float64(k), weights[k] + rng.NormFloat64()*0.5}); err != nil {
			t.Fatal(err)
		}
	}
	return fk, pk
}

func TestSampleResultValidation(t *testing.T) {
	fk, pk := buildPKFK(t, 10, 100, 1)
	rng := rand.New(rand.NewSource(2))
	if _, err := SampleResult(nil, pk, 0, 0, 10, rng); err == nil {
		t.Error("nil table should be rejected")
	}
	if _, err := SampleResult(fk, pk, 0, 0, 10, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
	if _, err := SampleResult(fk, pk, 5, 0, 10, rng); err == nil {
		t.Error("fk column out of range should be rejected")
	}
	if _, err := SampleResult(fk, pk, 0, 5, 10, rng); err == nil {
		t.Error("pk column out of range should be rejected")
	}
	// Duplicate keys on the key side must be rejected.
	dup, _ := table.New(1)
	_ = dup.Insert([]float64{1})
	_ = dup.Insert([]float64{1})
	if _, err := SampleResult(fk, dup, 0, 0, 10, rng); err == nil {
		t.Error("duplicate keys should be rejected")
	}
	// No matches at all.
	orphan, _ := table.New(1)
	_ = orphan.Insert([]float64{-99})
	if _, err := SampleResult(orphan, pk, 0, 0, 10, rng); err == nil {
		t.Error("joinless inputs should be rejected")
	}
}

func TestSampleResultShapeAndJoinCorrectness(t *testing.T) {
	fk, pk := buildPKFK(t, 20, 500, 3)
	rng := rand.New(rand.NewSource(4))
	rows, err := SampleResult(fk, pk, 0, 0, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 64 {
		t.Fatalf("sample size = %d, want 64", len(rows))
	}
	for _, r := range rows {
		if len(r) != 4 {
			t.Fatalf("joined arity = %d, want 4", len(r))
		}
		// Join key equality: fk col 0 == pk col 0 (position 2 in output).
		if r[0] != r[2] {
			t.Fatalf("join key mismatch in sampled row %v", r)
		}
	}
}

func TestJoinEstimatorAccuracy(t *testing.T) {
	fk, pk := buildPKFK(t, 20, 4000, 5)
	rng := rand.New(rand.NewSource(6))
	est, err := BuildEstimator(fk, pk, 0, 0, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.Dims() != 4 {
		t.Fatalf("dims = %d, want 4", est.Dims())
	}

	// Materialize the exact join for ground truth.
	pkByKey := map[float64][]float64{}
	for i := 0; i < pk.Len(); i++ {
		pkByKey[pk.Row(i)[0]] = pk.Row(i)
	}
	var joined [][]float64
	for i := 0; i < fk.Len(); i++ {
		r := fk.Row(i)
		if p, ok := pkByKey[r[0]]; ok {
			joined = append(joined, []float64{r[0], r[1], p[0], p[1]})
		}
	}

	// Range query over the combined space: facts whose value is in [3,7]
	// joined to keys whose weight is in [3,7].
	q := query.NewRange(
		[]float64{-1e9, 3, -1e9, 3},
		[]float64{1e9, 7, 1e9, 7},
	)
	actualIn := 0
	for _, r := range joined {
		if q.Contains(r) {
			actualIn++
		}
	}
	actual := float64(actualIn) / float64(len(joined))
	got, err := est.Selectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-actual) > 0.1 {
		t.Errorf("join selectivity %g vs actual %g", got, actual)
	}
	if est.KDE() == nil {
		t.Error("underlying KDE should be exposed for tuning")
	}
}

// exactBandSelectivity counts matching pairs directly.
func exactBandSelectivity(a, b []float64, eps float64) float64 {
	matches := 0
	for _, x := range a {
		for _, y := range b {
			if math.Abs(x-y) <= eps {
				matches++
			}
		}
	}
	return float64(matches) / float64(len(a)*len(b))
}

func TestBandSelectivityMatchesExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nR, nS = 3000, 2500
	aVals := make([]float64, nR)
	bVals := make([]float64, nS)
	rRows := make([][]float64, nR)
	sRows := make([][]float64, nS)
	for i := range rRows {
		aVals[i] = rng.NormFloat64() * 2
		rRows[i] = []float64{aVals[i]}
	}
	for i := range sRows {
		bVals[i] = rng.NormFloat64()*2 + 1
		sRows[i] = []float64{bVals[i]}
	}
	buildKDE := func(rows [][]float64, sample int) *kde.Estimator {
		e, _ := kde.New(1, nil)
		sub := rows[:sample]
		if err := e.SetSampleRows(sub); err != nil {
			t.Fatal(err)
		}
		if err := e.UseScottBandwidth(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	r := buildKDE(rRows, 400)
	s := buildKDE(sRows, 400)
	for _, eps := range []float64{0.1, 0.5, 1.5} {
		got, err := BandSelectivity(r, s, 0, 0, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := exactBandSelectivity(aVals, bVals, eps)
		if math.Abs(got-want) > 0.25*want+0.01 {
			t.Errorf("eps=%g: band selectivity %g vs exact %g", eps, got, want)
		}
	}
}

func TestBandSelectivityMonotoneInEps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mk := func() *kde.Estimator {
		rows := make([][]float64, 100)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64()}
		}
		e, _ := kde.New(1, nil)
		_ = e.SetSampleRows(rows)
		_ = e.UseScottBandwidth()
		return e
	}
	r, s := mk(), mk()
	prev := -1.0
	for _, eps := range []float64{0, 0.1, 0.5, 1, 5, 100} {
		got, err := BandSelectivity(r, s, 0, 0, eps)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("band selectivity not monotone at eps=%g: %g < %g", eps, got, prev)
		}
		prev = got
	}
	// Huge band captures everything.
	if prev < 0.999 {
		t.Errorf("wide-band selectivity = %g, want ~1", prev)
	}
}

func TestBandSelectivityValidation(t *testing.T) {
	e, _ := kde.New(1, nil)
	_ = e.SetSampleRows([][]float64{{0}, {1}})
	_ = e.UseScottBandwidth()
	if _, err := BandSelectivity(nil, e, 0, 0, 1); err == nil {
		t.Error("nil estimator should be rejected")
	}
	if _, err := BandSelectivity(e, e, 3, 0, 1); err == nil {
		t.Error("column out of range should be rejected")
	}
	if _, err := BandSelectivity(e, e, 0, 0, -1); err == nil {
		t.Error("negative eps should be rejected")
	}
	ep, _ := kde.New(1, kernel.Epanechnikov{})
	_ = ep.SetSampleRows([][]float64{{0}, {1}})
	_ = ep.UseScottBandwidth()
	if _, err := BandSelectivity(ep, e, 0, 0, 1); err == nil {
		t.Error("non-Gaussian kernel should be rejected")
	}
}

func TestEquiJoinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Both relations uniform over [0,10]; pair-match probability for
	// tolerance w is about w/10 (for w << 10), so the expected equi-join
	// size under tolerance w is nR·nS·w/10.
	mk := func(n int) ([]float64, *kde.Estimator) {
		vals := make([]float64, n)
		rows := make([][]float64, n)
		for i := range rows {
			vals[i] = rng.Float64() * 10
			rows[i] = []float64{vals[i]}
		}
		e, _ := kde.New(1, nil)
		_ = e.SetSampleRows(rows[:min(400, n)])
		_ = e.UseScottBandwidth()
		return vals, e
	}
	aVals, r := mk(2000)
	bVals, s := mk(2000)
	const tol = 0.2
	got, err := EquiJoinSize(r, s, 0, 0, len(aVals), len(bVals), tol)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactBandSelectivity(aVals, bVals, tol/2) * float64(len(aVals)*len(bVals))
	if math.Abs(got-exact) > 0.5*exact {
		t.Errorf("equi-join size %g vs exact %g", got, exact)
	}
	if _, err := EquiJoinSize(r, s, 0, 0, 10, 10, 0); err == nil {
		t.Error("zero tolerance should be rejected")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
