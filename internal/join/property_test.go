package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kdesel/internal/query"
	"kdesel/internal/table"
)

// Property: join-estimator selectivities are probabilities and monotone
// under query enclosure.
func TestJoinEstimatorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pk, _ := table.New(1)
		keys := 5 + rng.Intn(20)
		for i := 0; i < keys; i++ {
			if pk.Insert([]float64{float64(i)}) != nil {
				return false
			}
		}
		fk, _ := table.New(2)
		for i := 0; i < 300; i++ {
			if fk.Insert([]float64{float64(rng.Intn(keys)), rng.NormFloat64()}) != nil {
				return false
			}
		}
		est, err := BuildEstimator(fk, pk, 0, 0, 64, rng)
		if err != nil {
			return false
		}
		inner := query.NewRange(
			[]float64{-5, -1, -5},
			[]float64{5, 1, 5},
		)
		outer := query.NewRange(
			[]float64{-100, -10, -100},
			[]float64{100, 10, 100},
		)
		si, err1 := est.Selectivity(inner)
		so, err2 := est.Selectivity(outer)
		if err1 != nil || err2 != nil {
			return false
		}
		return si >= 0 && si <= 1 && so >= 0 && so <= 1 && so >= si-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
