package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdesel/internal/core"
	"kdesel/internal/fault"
	"kdesel/internal/metrics"
	"kdesel/internal/registry"
	"kdesel/internal/table"
)

// buildTable makes a d-dimensional clustered table with n rows.
func buildTable(t *testing.T, n, d int, seed int64) *table.Table {
	t.Helper()
	tab, err := table.New(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		center := float64(rng.Intn(3)) * 5
		for j := range row {
			row[j] = center + rng.NormFloat64()
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// testStack stands up a registry with one admitted 2-d model ("t(0,1)") and
// an httpserve.Server over it.
func testStack(t *testing.T, cfg Config) (*Server, *registry.Registry, registry.Key) {
	t.Helper()
	reg := registry.New(registry.Config{Metrics: cfg.Metrics})
	t.Cleanup(reg.Close)
	key := registry.NewKey("t", 0, 1)
	tab := buildTable(t, 400, 2, 11)
	err := reg.Admit(key, tab, core.Config{Mode: core.Heuristic, SampleSize: 128, Seed: 7, DisableMaintenance: true}, core.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, reg, key
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func errCode(t *testing.T, b []byte) string {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("non-JSON error body %q: %v", b, err)
	}
	return er.Code
}

func TestEstimateEndpoint(t *testing.T) {
	s, _, key := testStack(t, Config{DefaultModel: "t(0,1)"})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Happy path with an explicit model.
	resp, b := postJSON(t, ts.URL+"/estimate", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var er estimateResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Model != key.String() || er.Selectivity < 0 || er.Selectivity > 1 {
		t.Fatalf("response = %+v", er)
	}

	// The configured default model serves requests that omit "model".
	resp, b = postJSON(t, ts.URL+"/estimate", `{"lo":[-2,-2],"hi":[8,8]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default model: status = %d, body %s", resp.StatusCode, b)
	}

	// Error taxonomy.
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown model", `{"model":"nope(0,1)","lo":[0,0],"hi":[1,1]}`, http.StatusNotFound, "unknown_model"},
		{"invalid query dims", `{"model":"t(0,1)","lo":[0],"hi":[1]}`, http.StatusBadRequest, "invalid_query"},
		{"inverted bounds", `{"model":"t(0,1)","lo":[2,2],"hi":[1,1]}`, http.StatusBadRequest, "invalid_query"},
		{"malformed json", `{"lo":[0,0]`, http.StatusBadRequest, "bad_request"},
		{"unparseable key", `{"model":"zzz","lo":[0,0],"hi":[1,1]}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		resp, b := postJSON(t, ts.URL+"/estimate", tc.body)
		if resp.StatusCode != tc.status || errCode(t, b) != tc.code {
			t.Errorf("%s: status=%d code=%s body=%s, want %d %s", tc.name, resp.StatusCode, errCode(t, b), b, tc.status, tc.code)
		}
	}
}

func TestFeedbackAndAnalyzeEndpoints(t *testing.T) {
	s, _, _ := testStack(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, b := postJSON(t, ts.URL+"/feedback", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8],"actual":0.5}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("feedback status = %d, body %s", resp.StatusCode, b)
	}

	// Sync ANALYZE over a tiny feedback batch.
	var fb strings.Builder
	fb.WriteString(`{"model":"t(0,1)","feedback":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			fb.WriteByte(',')
		}
		fmt.Fprintf(&fb, `{"lo":[%d,-3],"hi":[%d,9],"actual":0.3}`, -3+i, 3+i)
	}
	fb.WriteString(`]}`)
	resp, b = postJSON(t, ts.URL+"/analyze?sync=1", fb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync analyze status = %d, body %s", resp.StatusCode, b)
	}

	// Async ANALYZE answers 202.
	resp, b = postJSON(t, ts.URL+"/analyze", fb.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async analyze status = %d, body %s", resp.StatusCode, b)
	}
}

func TestProbesAndMetrics(t *testing.T) {
	met := metrics.New()
	s, _, _ := testStack(t, Config{Metrics: met})
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, b := get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	var ready struct {
		Status string        `json:"status"`
		Models []readyzModel `json:"models"`
	}
	if err := json.Unmarshal(b, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ok" || len(ready.Models) != 1 || ready.Models[0].Health != "healthy" {
		t.Fatalf("readyz body = %s", b)
	}

	// One estimate, then the snapshot served by /metrics must show it.
	postJSON(t, ts.URL+"/estimate", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`)
	resp, b = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["http.accepted"] != 1 {
		t.Fatalf("http.accepted = %d in /metrics, want 1 (body %s)", snap.Counters["http.accepted"], b)
	}

	resp, b = get("/models")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte("t(0,1)")) {
		t.Fatalf("/models = %d %s", resp.StatusCode, b)
	}
}

// TestShedWhenSaturated fills every in-flight slot and the whole wait queue
// white-box, then checks the next request is shed instantly with 429 and
// both Retry-After headers, and that a queued request whose deadline expires
// gets 504.
func TestShedWhenSaturated(t *testing.T) {
	met := metrics.New()
	s, _, _ := testStack(t, Config{Metrics: met, MaxInFlight: 1, MaxQueue: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the only in-flight slot directly.
	s.tokens <- struct{}{}
	defer func() { <-s.tokens }()

	// One request parks in the wait queue (it will time out at its own
	// deadline and answer 504 deadline).
	queued := make(chan struct {
		status int
		code   string
	}, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/estimate?timeout_ms=400", "application/json",
			strings.NewReader(`{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		var er errorResponse
		_ = json.Unmarshal(b, &er)
		queued <- struct {
			status int
			code   string
		}{resp.StatusCode, er.Code}
	}()
	for s.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue is now full: the next request must shed immediately.
	start := time.Now()
	resp, b := postJSON(t, ts.URL+"/estimate", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`)
	shedLat := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, b) != "shed" {
		t.Fatalf("saturated: status=%d body=%s, want 429 shed", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get(RetryAfterMsHeader) == "" {
		t.Error("shed response lacks Retry-After headers")
	}
	if shedLat > time.Second {
		t.Errorf("shed rejection took %v; shedding must be fast", shedLat)
	}

	// The queued request's deadline expires while it waits.
	select {
	case out := <-queued:
		if out.status != http.StatusGatewayTimeout || out.code != "deadline" {
			t.Fatalf("queued request: status=%d code=%s, want 504 deadline", out.status, out.code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never completed")
	}

	snap := met.Snapshot()
	if snap.Counters["http.shed"] != 1 || snap.Counters["http.deadline_expired"] != 1 {
		t.Fatalf("counters = shed:%d deadline:%d, want 1/1",
			snap.Counters["http.shed"], snap.Counters["http.deadline_expired"])
	}
}

func TestDrain(t *testing.T) {
	s, _, _ := testStack(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, b := postJSON(t, ts.URL+"/estimate", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, b) != "draining" {
		t.Fatalf("post-drain estimate: %d %s", resp.StatusCode, b)
	}
	r2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz = %d, want 503", r2.StatusCode)
	}
	r3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("post-drain healthz = %d, want 200 (alive, not ready)", r3.StatusCode)
	}
	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkChaosAccountingExact drives concurrent clients through a
// saturated frontend with all three network faults injected and proves the
// accounting identity at the heart of the PR: every issued request resolves
// to exactly one of accepted / shed / failed, the server's accepted counter
// equals the clients' received-result count (nothing lost, nothing
// double-counted), and injected faults surface as failures, never as
// phantom acceptances.
func TestNetworkChaosAccountingExact(t *testing.T) {
	met := metrics.New()
	inj := fault.New(42, fault.Schedule{
		fault.NetDrop:  {Every: 17},
		fault.NetError: {Every: 13},
		fault.NetDelay: {Every: 5, Delay: 2 * time.Millisecond},
	})
	s, _, _ := testStack(t, Config{Metrics: met, MaxInFlight: 2, MaxQueue: 2, Faults: inj})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 8
	const perClient = 40
	var accepted, shed, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &http.Client{}
			for i := 0; i < perClient; i++ {
				resp, err := cl.Post(ts.URL+"/estimate?timeout_ms=2000", "application/json",
					strings.NewReader(`{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`))
				if err != nil {
					failed.Add(1) // dropped connection
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	issued := int64(clients * perClient)
	if got := accepted.Load() + shed.Load() + failed.Load(); got != issued {
		t.Fatalf("accepted(%d) + shed(%d) + failed(%d) = %d, want %d issued",
			accepted.Load(), shed.Load(), failed.Load(), got, issued)
	}
	snap := met.Snapshot()
	if got := snap.Counters["http.accepted"]; got != accepted.Load() {
		t.Errorf("server accepted %d, clients received %d results (must match exactly)", got, accepted.Load())
	}
	if got := snap.Counters["http.shed"]; got != shed.Load() {
		t.Errorf("server shed %d, clients saw %d rejections", got, shed.Load())
	}
	if inj.Fired(fault.NetDrop) == 0 || inj.Fired(fault.NetError) == 0 || inj.Fired(fault.NetDelay) == 0 {
		t.Errorf("chaos points did not all fire: drop=%d 5xx=%d delay=%d",
			inj.Fired(fault.NetDrop), inj.Fired(fault.NetError), inj.Fired(fault.NetDelay))
	}
	if got := snap.Counters["http.injected_drops"]; got != int64(inj.Fired(fault.NetDrop)) {
		t.Errorf("injected_drops = %d, injector fired %d", got, inj.Fired(fault.NetDrop))
	}
	// Model-side accounting: the estimator must have evaluated exactly the
	// accepted requests.
	if got := snap.Counters["http.requests"]; got != issued {
		t.Errorf("http.requests = %d, want %d", got, issued)
	}
}

// TestDeadlinePropagatesToModel checks the 504 path end to end: with every
// in-flight slot free but the model's writer wedged (serialize mode), a
// deadline-bound request fails fast with 504 instead of parking.
func TestDeadlinePropagatesToModel(t *testing.T) {
	reg := registry.New(registry.Config{})
	defer reg.Close()
	key := registry.NewKey("t", 0, 1)
	tab := buildTable(t, 300, 2, 3)
	// SerializeEstimates + no coalescer: every estimate needs the writer
	// mutex, so a long ANALYZE blocks the estimate path — the worst case
	// deadline propagation exists for.
	err := reg.Admit(key, tab, core.Config{Mode: core.Heuristic, SampleSize: 128, Seed: 7, DisableMaintenance: true},
		core.ServeConfig{MaxBatch: -1, SerializeEstimates: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Wedge the writer with a slow synchronous ANALYZE over a large
	// feedback batch, then race a deadline-bound estimate against it.
	var fb strings.Builder
	fb.WriteString(`{"model":"t(0,1)","feedback":[`)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		if i > 0 {
			fb.WriteByte(',')
		}
		a := rng.Float64()*6 - 3
		fmt.Fprintf(&fb, `{"lo":[%.3f,%.3f],"hi":[%.3f,%.3f],"actual":0.2}`, a, a, a+2, a+2)
	}
	fb.WriteString(`]}`)
	analyzeDone := make(chan struct{})
	go func() {
		defer close(analyzeDone)
		postJSON(t, ts.URL+"/analyze?sync=1&timeout_ms=60000", fb.String())
	}()

	deadline := time.After(10 * time.Second)
	sawDeadline := false
	for !sawDeadline {
		select {
		case <-deadline:
			t.Log("ANALYZE finished too fast to observe a 504; treating as inconclusive pass")
			sawDeadline = true
		case <-analyzeDone:
			t.Skip("ANALYZE completed before a deadline-bound estimate could contend")
		default:
			resp, b := postJSON(t, ts.URL+"/estimate?timeout_ms=30", `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`)
			if resp.StatusCode == http.StatusGatewayTimeout {
				if code := errCode(t, b); code != "deadline" {
					t.Fatalf("504 with code %s", code)
				}
				sawDeadline = true
			}
		}
	}
	<-analyzeDone
}

func TestNewRequiresRegistry(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil registry")
	}
	if _, err := New(Config{Registry: registry.New(registry.Config{}), DefaultModel: "bad"}); err == nil {
		t.Fatal("New accepted an unparseable DefaultModel")
	}
}

// TestShardedEstimateEndpoint drives a sharded model through the HTTP
// scatter/gather path: a healthy gather answers with degraded unset, an
// injected single-shard failure answers 200 with the renormalized survivor
// estimate and degraded:true, readiness reports the Degraded rung with the
// shard count, and an all-shards failure maps to 503 shards_failed.
func TestShardedEstimateEndpoint(t *testing.T) {
	reg := registry.New(registry.Config{})
	t.Cleanup(reg.Close)
	key := registry.NewKey("t", 0, 1)
	tab := buildTable(t, 400, 2, 11)
	// Shard attempts count per gather in shard-index order: the first
	// gather draws attempts 1 (shard 0) and 2 (shard 1), the second 3 and
	// 4, and so on. Attempt 4 fails one shard of gather #2; attempts 5 and
	// 6 fail both shards of gather #3.
	inj := fault.New(1, fault.Schedule{fault.ShardFail: {At: []int{4, 5, 6}}})
	err := reg.AdmitSharded(key, tab, core.Config{SampleSize: 512, Seed: 7, Faults: inj}, 2, core.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"model":"t(0,1)","lo":[-2,-2],"hi":[8,8]}`

	// Gather #1: all shards answer.
	resp, b := postJSON(t, ts.URL+"/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy gather: status = %d, body %s", resp.StatusCode, b)
	}
	var er estimateResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Degraded {
		t.Fatalf("healthy gather reported degraded: %+v", er)
	}
	healthy := er.Selectivity

	// Gather #2: one shard fails; the request still answers 200 from the
	// renormalized survivors and is flagged degraded.
	resp, b = postJSON(t, ts.URL+"/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded gather: status = %d, body %s", resp.StatusCode, b)
	}
	er = estimateResponse{}
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded {
		t.Fatalf("degraded gather not flagged: %+v", er)
	}
	if er.Selectivity <= 0 || er.Selectivity > 1 {
		t.Fatalf("degraded selectivity %v implausible (healthy was %v)", er.Selectivity, healthy)
	}

	// Readiness reflects the Degraded health rung and the shard count.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	var ready struct {
		Status string        `json:"status"`
		Models []readyzModel `json:"models"`
	}
	if err := json.Unmarshal(rb, &ready); err != nil {
		t.Fatalf("readyz body %s: %v", rb, err)
	}
	if ready.Status != "degraded" {
		t.Fatalf("readyz status = %q after shard loss, want degraded (body %s)", ready.Status, rb)
	}
	if len(ready.Models) != 1 || ready.Models[0].Shards != 2 {
		t.Fatalf("readyz models = %+v, want one model with 2 shards", ready.Models)
	}

	// Gather #3: every shard fails; nothing to renormalize over.
	resp, b = postJSON(t, ts.URL+"/estimate", body)
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, b) != "shards_failed" {
		t.Fatalf("all-shards failure: status=%d code=%s body=%s, want 503 shards_failed",
			resp.StatusCode, errCode(t, b), b)
	}

	// Gather #4: the injector is exhausted; service recovers (health stays
	// Degraded — the rung is monotone — but estimates flow undegraded).
	resp, b = postJSON(t, ts.URL+"/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault gather: status = %d, body %s", resp.StatusCode, b)
	}
	er = estimateResponse{}
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Degraded {
		t.Fatalf("post-fault gather still degraded: %+v", er)
	}
	if er.Selectivity != healthy {
		t.Fatalf("post-fault selectivity %v != healthy %v (determinism)", er.Selectivity, healthy)
	}
}

func TestIngestEndpoint(t *testing.T) {
	s, reg, key := testStack(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Rows flow through the bridge; the response reports counts and lag.
	resp, b := postJSON(t, ts.URL+"/ingest", `{"model":"t(0,1)","rows":[[1,2],[3,4]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: %d %s", resp.StatusCode, b)
	}
	var ir struct {
		Model    string `json:"model"`
		Inserted int    `json:"inserted"`
		Deleted  int    `json:"deleted"`
		Lag      int    `json:"lag"`
	}
	if err := json.Unmarshal(b, &ir); err != nil {
		t.Fatalf("bad body %q: %v", b, err)
	}
	if ir.Model != key.String() || ir.Inserted != 2 {
		t.Fatalf("response %+v: want model %s inserted 2", ir, key)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := reg.IngestStats(key)
		if ok && st.Depth == 0 && st.Applied == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested rows never applied: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// A delete region uses the same endpoint.
	resp, b = postJSON(t, ts.URL+"/ingest", `{"model":"t(0,1)","delete_lo":[0.5,1.5],"delete_hi":[1.5,2.5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest delete: %d %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Deleted < 1 {
		t.Fatalf("response %+v: delete region covering an ingested row removed nothing", ir)
	}

	// Validation: wrong row width, empty body, unknown model.
	resp, b = postJSON(t, ts.URL+"/ingest", `{"model":"t(0,1)","rows":[[1,2,3]]}`)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, b) != "invalid_row" {
		t.Fatalf("3-wide row on 2-d model: %d %s", resp.StatusCode, b)
	}
	resp, b = postJSON(t, ts.URL+"/ingest", `{"model":"t(0,1)"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest body: %d %s", resp.StatusCode, b)
	}
	resp, b = postJSON(t, ts.URL+"/ingest", `{"model":"nope(0)","rows":[[1]]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, b)
	}

	// readyz reports the ingestion state without degrading at zero lag.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz: %d %s", rresp.StatusCode, rb)
	}
	var rz struct {
		Status string `json:"status"`
		Models []struct {
			Ingesting bool `json:"ingesting"`
			IngestLag int  `json:"ingest_lag"`
		} `json:"models"`
	}
	if err := json.Unmarshal(rb, &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Status != "ok" || len(rz.Models) != 1 || !rz.Models[0].Ingesting {
		t.Fatalf("readyz %s: want ok with one ingesting model", rb)
	}
}
