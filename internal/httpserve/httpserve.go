// Package httpserve is the networked serving frontend: an HTTP/JSON facade
// over the model registry (internal/registry) engineered for failure first.
// The estimator only pays off inside a query optimizer, and the integration
// exemplars all drive the model over a database wire protocol from non-Go
// clients — so the wire layer must uphold the same robustness contract the
// core does: degrade, shed, and drain instead of stalling or corrupting
// accounting.
//
// The frontend adds three protections in front of the estimate path:
//
//   - Deadline propagation: every request carries a deadline (default,
//     header, or query-param supplied) threaded as a context.Context through
//     registry.EstimateContext into the coalescer, so a caller that gives up
//     unblocks immediately and its abandoned batch slot is reclaimed
//     (serve.Batcher claim-at-flush). An expired request never occupies
//     estimator capacity.
//
//   - Admission control: at most MaxInFlight estimates run concurrently;
//     at most MaxQueue more may wait for a slot. Beyond that, requests are
//     shed instantly with 429 + Retry-After — a fast rejection is the
//     contract that keeps accepted-request latency bounded at overload.
//
//   - Graceful drain: Drain stops intake (503) and waits for in-flight
//     requests, reusing Server.Close/registry semantics underneath, so a
//     shutdown never strands a caller or loses an accepted estimate.
//
// Observability rides on internal/metrics (/metrics serves the shared
// registry snapshot; http.* instruments count every admission outcome) and
// /healthz·/readyz surface liveness and the core degradation ladder.
// Network chaos — connection drops, injected 5xx, added latency — comes
// from internal/fault's netdrop/net5xx/netdelay points, injected at request
// intake so a faulted request is never double-counted as accepted.
//
// Error taxonomy (JSON body {"error": ..., "code": ...}):
//
//	400 bad_request     malformed JSON, unparseable model key
//	400 invalid_query   query rejected by estimator validation
//	404 unknown_model   key never admitted
//	408 client_gone     client disconnected mid-request
//	429 shed            admission queue full (Retry-After set)
//	500 internal        estimator failure
//	500 injected        fault-injected 5xx (chaos testing)
//	503 draining        server draining or registry closed (Retry-After set)
//	504 deadline        per-request deadline expired before evaluation
package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kdesel/internal/core"
	"kdesel/internal/fault"
	"kdesel/internal/metrics"
	"kdesel/internal/query"
	"kdesel/internal/registry"
	"kdesel/internal/shard"
)

// Defaults for the admission and deadline knobs; see Config.
const (
	DefaultMaxInFlight = 64
	DefaultTimeout     = time.Second
	DefaultMaxTimeout  = 10 * time.Second
	DefaultRetryAfter  = 50 * time.Millisecond
	// DefaultIngestLagDegraded is the /readyz lag threshold; see
	// Config.IngestLagDegraded.
	DefaultIngestLagDegraded = 512
)

// TimeoutHeader and TimeoutParam let a caller bound one request's latency:
// the value is milliseconds, clamped to Config.MaxTimeout. The query
// parameter wins when both are present.
const (
	TimeoutHeader = "X-Kdesel-Timeout-Ms"
	TimeoutParam  = "timeout_ms"
)

// RetryAfterMsHeader carries the Retry-After hint at millisecond resolution
// alongside the standard (whole-seconds) Retry-After header, because shed
// backoff at estimator latencies is sub-second.
const RetryAfterMsHeader = "Retry-After-Ms"

// Config tunes a Server. Registry is required; everything else defaults.
type Config struct {
	// Registry routes estimates/feedback/analyze per model key. The server
	// does not own it: Close drains HTTP intake but leaves the registry (and
	// its models) to the caller, matching CLI shutdown order — drain the
	// edge first, checkpoint and close models second.
	Registry *registry.Registry
	// DefaultModel, when set, is the key (canonical "table(c0,c1)" form)
	// used by requests that omit "model".
	DefaultModel string
	// MaxInFlight caps concurrently evaluating estimates (default
	// DefaultMaxInFlight).
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot (default
	// 2·MaxInFlight). Beyond it requests are shed with 429.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the caller supplies
	// none (default DefaultTimeout). Negative disables the default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps caller-supplied deadlines (default
	// DefaultMaxTimeout).
	MaxTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429/503 responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// Metrics, when non-nil, receives the http.* instruments and is the
	// registry served by /metrics (normally the same shared registry the
	// models are instrumented on). Nil disables both.
	Metrics *metrics.Registry
	// MetricPrefix namespaces the http.* instruments (e.g. "edge." yields
	// edge.http.requests); empty means unprefixed.
	MetricPrefix string
	// Faults, when non-nil, injects network chaos at request intake: the
	// netdelay point stalls, net5xx answers 500, netdrop severs the
	// connection without a response. Injection happens before admission, so
	// a faulted request is never counted as accepted.
	Faults *fault.Injector
	// IngestLagDegraded is the continuous-ingestion lag (buffered-but-
	// unapplied mutations) at or above which a model reports degraded on
	// /readyz (default DefaultIngestLagDegraded; negative disables
	// lag-based degradation). Lagging models still serve — they answer
	// from the latest published snapshot — so lag degrades readiness
	// rather than failing it, same as the core health ladder.
	IngestLagDegraded int
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return DefaultMaxInFlight
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 2 * c.maxInFlight()
}

func (c Config) defaultTimeout() time.Duration {
	switch {
	case c.DefaultTimeout > 0:
		return c.DefaultTimeout
	case c.DefaultTimeout < 0:
		return 0
	default:
		return DefaultTimeout
	}
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return DefaultMaxTimeout
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return DefaultRetryAfter
}

func (c Config) ingestLagDegraded() int {
	switch {
	case c.IngestLagDegraded > 0:
		return c.IngestLagDegraded
	case c.IngestLagDegraded < 0:
		return 0
	default:
		return DefaultIngestLagDegraded
	}
}

// maxBody bounds request bodies; a feedback batch of a few thousand ranges
// fits comfortably, a runaway client does not.
const maxBody = 1 << 20

// Server is the HTTP frontend. It implements http.Handler, so it mounts
// directly on net/http.Server or httptest. Construct with New; the zero
// value is not usable.
type Server struct {
	cfg      Config
	reg      *registry.Registry
	faults   *fault.Injector
	mux      *http.ServeMux
	deftKey  registry.Key
	hasDeft  bool
	timeout  time.Duration
	maxTo    time.Duration
	retryHdr time.Duration

	tokens   chan struct{} // in-flight slots
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{} // closed by Drain: unblocks queued waiters
	wg       sync.WaitGroup
	drainOne sync.Once

	met struct {
		reg        *metrics.Registry
		prefix     string
		requests   *metrics.Counter // every data-plane request received
		accepted   *metrics.Counter // evaluated successfully
		shed       *metrics.Counter // rejected 429 (queue full)
		rejected   *metrics.Counter // rejected 503 (draining/closed)
		deadline   *metrics.Counter // 504 (deadline expired pre-result)
		failed     *metrics.Counter // 4xx/5xx semantic or internal failures
		inject5xx  *metrics.Counter
		injectDrop *metrics.Counter
		reqSec     *metrics.Histogram // accepted-request latency
		shedSec    *metrics.Histogram // shed-rejection latency
	}
}

// New builds the frontend over cfg.Registry.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("httpserve: Config.Registry is required")
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		faults:   cfg.Faults,
		timeout:  cfg.defaultTimeout(),
		maxTo:    cfg.maxTimeout(),
		retryHdr: cfg.retryAfter(),
		tokens:   make(chan struct{}, cfg.maxInFlight()),
		drainCh:  make(chan struct{}),
	}
	if cfg.DefaultModel != "" {
		k, err := registry.ParseKey(cfg.DefaultModel)
		if err != nil {
			return nil, fmt.Errorf("httpserve: bad DefaultModel: %w", err)
		}
		s.deftKey, s.hasDeft = k, true
	}
	if m := cfg.Metrics; m != nil {
		p := cfg.MetricPrefix
		s.met.reg = m
		s.met.prefix = p
		s.met.requests = m.Counter(p + "http.requests")
		s.met.accepted = m.Counter(p + "http.accepted")
		s.met.shed = m.Counter(p + "http.shed")
		s.met.rejected = m.Counter(p + "http.rejected")
		s.met.deadline = m.Counter(p + "http.deadline_expired")
		s.met.failed = m.Counter(p + "http.failed")
		s.met.inject5xx = m.Counter(p + "http.injected_5xx")
		s.met.injectDrop = m.Counter(p + "http.injected_drops")
		s.met.reqSec = m.Histogram(p + "http.request_seconds")
		s.met.shedSec = m.Histogram(p + "http.shed_seconds")
		m.RegisterGaugeFunc(p+"http.inflight", func() float64 { return float64(s.inflight.Load()) })
		m.RegisterGaugeFunc(p+"http.queue_depth", func() float64 { return float64(s.queued.Load()) })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /models", s.handleModels)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops intake — every subsequent data-plane request is rejected with
// 503 draining, and /readyz flips to 503 — and waits for in-flight requests
// to complete or ctx to expire. Safe to call more than once; the first call
// performs the drain. Probe and metrics endpoints keep answering so
// operators can watch the drain.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("httpserve: drain: %w", ctx.Err())
	}
}

// Close drains with no deadline and unregisters the server's gauge funcs so
// a retired frontend stops reporting and is not pinned by the metrics
// registry. The model registry is left untouched (see Config.Registry).
func (s *Server) Close() error {
	err := s.Drain(context.Background())
	if s.met.reg != nil {
		s.met.reg.UnregisterGaugeFunc(s.met.prefix + "http.inflight")
		s.met.reg.UnregisterGaugeFunc(s.met.prefix + "http.queue_depth")
	}
	return err
}

// Draining reports whether intake has been stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorResponse is the wire form of every non-2xx outcome.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int(s.retryHdr / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set(RetryAfterMsHeader, strconv.FormatInt(s.retryHdr.Milliseconds(), 10))
	}
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// injectFaults runs the network chaos points for one data-plane request.
// It reports whether the request should continue; on false a response (or
// none, for a drop) has already been produced. Intake-side injection keeps
// the accounting identity exact: a faulted request fails before admission,
// so it can never also count as accepted.
func (s *Server) injectFaults(w http.ResponseWriter) bool {
	if s.faults == nil {
		return true
	}
	if d := s.faults.FireDelay(fault.NetDelay); d > 0 {
		time.Sleep(d)
	}
	if s.faults.Fire(fault.NetDrop) {
		s.met.injectDrop.Inc()
		s.met.failed.Inc()
		// http.ErrAbortHandler makes net/http sever the connection without
		// writing a response — the closest stdlib equivalent of a mid-flight
		// network partition.
		panic(http.ErrAbortHandler)
	}
	if s.faults.Fire(fault.NetError) {
		s.met.inject5xx.Inc()
		s.met.failed.Inc()
		s.writeErr(w, http.StatusInternalServerError, "injected", "fault-injected server error")
		return false
	}
	return true
}

// enter is the common data-plane prologue: fault injection, drain check,
// in-flight registration. It reports whether the handler may proceed; when
// true the caller must defer exit().
func (s *Server) enter(w http.ResponseWriter) bool {
	s.met.requests.Inc()
	if !s.injectFaults(w) {
		return false
	}
	s.wg.Add(1)
	if s.draining.Load() {
		s.wg.Done()
		s.met.rejected.Inc()
		s.writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return false
	}
	return true
}

func (s *Server) exit() { s.wg.Done() }

// admit acquires an in-flight slot, shedding instantly when the wait queue
// is full. It returns a release func on success; on failure the response
// has been written. Shedding is the fast path by construction: a full
// queue is one atomic add and an immediate 429, never a wait.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, start time.Time) (func(), bool) {
	select {
	case s.tokens <- struct{}{}:
	default:
		// No free slot: join the bounded wait queue or shed.
		if s.queued.Add(1) > int64(s.cfg.maxQueue()) {
			s.queued.Add(-1)
			s.met.shed.Inc()
			s.met.shedSec.ObserveDuration(time.Since(start))
			s.writeErr(w, http.StatusTooManyRequests, "shed", "admission queue full")
			return nil, false
		}
		select {
		case s.tokens <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.met.deadline.Inc()
			s.writeErr(w, http.StatusGatewayTimeout, "deadline", "deadline expired while queued")
			return nil, false
		case <-s.drainCh:
			s.queued.Add(-1)
			s.met.rejected.Inc()
			s.writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
			return nil, false
		}
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.tokens
	}, true
}

// requestContext derives the per-request deadline: TimeoutParam, then
// TimeoutHeader, then the configured default, all clamped to MaxTimeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.timeout
	raw := r.URL.Query().Get(TimeoutParam)
	if raw == "" {
		raw = r.Header.Get(TimeoutHeader)
	}
	if raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want positive milliseconds)", raw)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	if d > s.maxTo {
		d = s.maxTo
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) modelKey(name string) (registry.Key, error) {
	if name == "" {
		if s.hasDeft {
			return s.deftKey, nil
		}
		return registry.Key{}, errors.New("request omits \"model\" and no default model is configured")
	}
	return registry.ParseKey(name)
}

// writeModelErr maps registry/core errors onto the wire taxonomy.
func (s *Server) writeModelErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.deadline.Inc()
		s.writeErr(w, http.StatusGatewayTimeout, "deadline", "deadline expired before evaluation completed")
	case errors.Is(err, context.Canceled):
		// The per-request context is canceled only via the client's
		// connection context; the caller is gone.
		s.met.failed.Inc()
		s.writeErr(w, http.StatusRequestTimeout, "client_gone", "client disconnected")
	case errors.Is(err, registry.ErrUnknownModel):
		s.met.failed.Inc()
		s.writeErr(w, http.StatusNotFound, "unknown_model", err.Error())
	case errors.Is(err, core.ErrInvalidQuery), errors.Is(err, core.ErrInvalidFeedback):
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "invalid_query", err.Error())
	case errors.Is(err, registry.ErrClosed), errors.Is(err, shard.ErrClosed):
		s.met.rejected.Inc()
		s.writeErr(w, http.StatusServiceUnavailable, "draining", "model registry closed")
	case errors.Is(err, shard.ErrAllShardsFailed):
		// Every shard of a sharded model failed the scatter: nothing to
		// renormalize over, so the request cannot be served at all.
		s.met.failed.Inc()
		s.writeErr(w, http.StatusServiceUnavailable, "shards_failed", err.Error())
	default:
		s.met.failed.Inc()
		s.writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// estimateRequest is the wire form of POST /estimate.
type estimateRequest struct {
	Model string    `json:"model,omitempty"`
	Lo    []float64 `json:"lo"`
	Hi    []float64 `json:"hi"`
}

// estimateResponse is the wire form of a successful estimate. Degraded is
// set when a sharded model lost one or more shards during the scatter and
// the selectivity is the renormalized survivor estimate.
type estimateResponse struct {
	Model       string  `json:"model"`
	Selectivity float64 `json:"selectivity"`
	Degraded    bool    `json:"degraded,omitempty"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.enter(w) {
		return
	}
	defer s.exit()
	var req estimateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", "bad estimate body: "+err.Error())
		return
	}
	key, err := s.modelKey(req.Model)
	if err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	defer cancel()
	release, ok := s.admit(ctx, w, start)
	if !ok {
		return
	}
	defer release()
	sel, degraded, err := s.reg.EstimateContextDetail(ctx, key, query.NewRange(req.Lo, req.Hi))
	if err != nil {
		s.writeModelErr(w, err)
		return
	}
	s.met.accepted.Inc()
	s.met.reqSec.ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, estimateResponse{Model: key.String(), Selectivity: sel, Degraded: degraded})
}

// feedbackRequest is the wire form of POST /feedback. Feedback is NOT
// idempotent — each delivery is one learning observation — so the protocol
// contract is that clients never retry it (httpclient enforces this).
type feedbackRequest struct {
	Model  string    `json:"model,omitempty"`
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
	Actual float64   `json:"actual"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.exit()
	var req feedbackRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", "bad feedback body: "+err.Error())
		return
	}
	key, err := s.modelKey(req.Model)
	if err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := s.reg.Feedback(key, query.NewRange(req.Lo, req.Hi), req.Actual); err != nil {
		s.writeModelErr(w, err)
		return
	}
	s.met.accepted.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// ingestRequest is the wire form of POST /ingest: rows to append and/or a
// region to delete, applied to the model's backing table through its change
// feed. The first ingest for a model attaches a default ingestion bridge
// (registry.AttachIngest), so writes are batched under the model's writer
// lock and never race serving. A full ingest ring blocks the handler —
// backpressure propagates to the writing client rather than growing
// unbounded maintenance lag.
type ingestRequest struct {
	Model string      `json:"model,omitempty"`
	Rows  [][]float64 `json:"rows,omitempty"`
	// DeleteLo/DeleteHi, when both present, delete every row inside the
	// closed box they bound.
	DeleteLo []float64 `json:"delete_lo,omitempty"`
	DeleteHi []float64 `json:"delete_hi,omitempty"`
}

// ingestResponse reports what was applied to the table plus the bridge's
// current lag, so writers can self-throttle before hitting backpressure.
type ingestResponse struct {
	Model    string `json:"model"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Lag      int    `json:"lag"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.exit()
	var req ingestRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", "bad ingest body: "+err.Error())
		return
	}
	key, err := s.modelKey(req.Model)
	if err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	wantDelete := len(req.DeleteLo) > 0 || len(req.DeleteHi) > 0
	if len(req.Rows) == 0 && !wantDelete {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", "ingest body carries no rows and no delete region")
		return
	}
	tab := s.reg.Table(key)
	if tab == nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusNotFound, "unknown_model", registry.ErrUnknownModel.Error()+": "+key.String())
		return
	}
	for i, row := range req.Rows {
		if len(row) != tab.Dims() {
			s.met.failed.Inc()
			s.writeErr(w, http.StatusBadRequest, "invalid_row",
				fmt.Sprintf("row %d has %d values, model has %d dimensions", i, len(row), tab.Dims()))
			return
		}
	}
	resp := ingestResponse{Model: key.String()}
	if len(req.Rows) > 0 {
		if err := s.reg.IngestRows(key, req.Rows); err != nil {
			s.writeModelErr(w, err)
			return
		}
		resp.Inserted = len(req.Rows)
	}
	if wantDelete {
		n, err := s.reg.IngestDeleteWhere(key, query.NewRange(req.DeleteLo, req.DeleteHi))
		if err != nil {
			if errors.Is(err, core.ErrInvalidQuery) || len(req.DeleteLo) != tab.Dims() || len(req.DeleteHi) != tab.Dims() {
				s.met.failed.Inc()
				s.writeErr(w, http.StatusBadRequest, "invalid_query", "bad delete region: "+err.Error())
				return
			}
			s.writeModelErr(w, err)
			return
		}
		resp.Deleted = n
	}
	resp.Lag = s.reg.IngestLag(key)
	s.met.accepted.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// analyzeRequest is the wire form of POST /analyze: a feedback batch to
// re-optimize over. With sync=1 the call blocks through ANALYZE; otherwise
// it enqueues on the registry's background worker and answers 202.
type analyzeRequest struct {
	Model    string            `json:"model,omitempty"`
	Feedback []feedbackElement `json:"feedback"`
}

type feedbackElement struct {
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
	Actual float64   `json:"actual"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.exit()
	var req analyzeRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", "bad analyze body: "+err.Error())
		return
	}
	key, err := s.modelKey(req.Model)
	if err != nil {
		s.met.failed.Inc()
		s.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	fbs := make([]query.Feedback, len(req.Feedback))
	for i, f := range req.Feedback {
		fbs[i] = query.Feedback{Query: query.NewRange(f.Lo, f.Hi), Actual: f.Actual}
	}
	if r.URL.Query().Get("sync") == "1" {
		if err := s.reg.Analyze(key, fbs); err != nil {
			s.writeModelErr(w, err)
			return
		}
		s.met.accepted.Inc()
		writeJSON(w, http.StatusOK, map[string]any{"model": key.String(), "analyzed": true})
		return
	}
	if err := s.reg.ScheduleAnalyze(key, fbs); err != nil {
		if errors.Is(err, registry.ErrAnalyzeQueueFull) {
			s.met.shed.Inc()
			s.writeErr(w, http.StatusTooManyRequests, "shed", "analyze queue full")
			return
		}
		s.writeModelErr(w, err)
		return
	}
	s.met.accepted.Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{"model": key.String(), "queued": true})
}

// handleHealthz is the liveness probe: the process is up and the handler
// runs. It stays 200 through a drain (the process is alive; it is just not
// ready), matching the usual liveness/readiness split.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// readyzModel is one model's row in the readiness body.
type readyzModel struct {
	Model     string `json:"model"`
	Resident  bool   `json:"resident"`
	Health    string `json:"health,omitempty"`
	Queries   int    `json:"queries,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Ingesting bool   `json:"ingesting,omitempty"`
	// IngestLag is the model's buffered-but-unapplied change-feed
	// mutation count; at or above Config.IngestLagDegraded it degrades
	// readiness.
	IngestLag int `json:"ingest_lag,omitempty"`
}

// handleReadyz is the readiness probe, backed by the core degradation
// ladder: 503 while draining, otherwise 200 with status "ok" when every
// resident model is Healthy and "degraded" when any has fallen down the
// ladder (degraded models still serve — degradation is exactly the
// mechanism that keeps them serving — so they do not fail readiness).
// Health reads are lock-free, so readyz answers during a long ANALYZE.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	sts := s.reg.Status()
	models := make([]readyzModel, len(sts))
	status := "ok"
	lagDeg := s.cfg.ingestLagDegraded()
	for i, st := range sts {
		m := readyzModel{
			Model: st.Key.String(), Resident: st.Resident, Shards: st.Shards,
			Ingesting: st.Ingesting, IngestLag: st.IngestLag,
		}
		if st.Resident {
			m.Health = st.Health.String()
			m.Queries = st.Queries
			if st.Health != core.Healthy {
				status = "degraded"
			}
		}
		// The ingestion rung of the ladder: a model whose applier cannot
		// keep up with its change feed serves increasingly stale snapshots,
		// which is degradation, not failure.
		if st.Ingesting && lagDeg > 0 && st.IngestLag >= lagDeg {
			status = "degraded"
		}
		models[i] = m
	}
	body := map[string]any{"status": status, "models": models}
	if s.draining.Load() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the shared metrics registry snapshot (stable JSON,
// see internal/metrics). With no registry configured it answers an empty
// object rather than 404, so scrapers need no special case.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.met.reg == nil {
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	writeJSON(w, http.StatusOK, s.met.reg.Snapshot())
}

// handleModels lists every admitted model and its serving state.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	sts := s.reg.Status()
	models := make([]readyzModel, len(sts))
	for i, st := range sts {
		models[i] = readyzModel{Model: st.Key.String(), Resident: st.Resident, Shards: st.Shards}
		if st.Resident {
			models[i].Health = st.Health.String()
			models[i].Queries = st.Queries
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}
