// Package registry is the process-level model registry for one-process
// serving of many KDE selectivity models. The paper builds one estimator
// per (table, column subset) a query optimizer cares about (§6 runs dozens
// per workload); embedding them in one process means the models must share
// the scarce resources — one host worker pool, one (simulated) device, one
// metrics registry — while keeping their lifecycles independent: one
// model's multi-second ANALYZE must never stall another model's estimates.
//
// The registry owns that lifecycle. Models are admitted under a Key
// (table + ordered column subset), built once, and served through
// core.Server — so each model keeps the single-writer / lock-free-reader
// split of the serving layer, and cross-model isolation follows from each
// model having its own writer mutex. The registry adds:
//
//   - routing: Estimate/Feedback/Analyze take a Key and find the model;
//   - shared resources: every model runs on one parallel.Pool, one optional
//     gpu.Device, and one metrics.Registry, with per-model metric namespaces
//     ("model.<key>.", see Key.MetricPrefix) so instruments never collide;
//   - checkpoint rotation: periodic atomic checkpoints per model, keeping
//     the last K (internal/checkpoint's temp+rename keeps each file atomic);
//   - eviction and restore: LRU/idle eviction checkpoints the model, tears
//     down its server and metric namespace, and drops the memory; the next
//     Estimate for that key transparently restores from the newest
//     checkpoint (bit-identical continuation, see internal/core/persist.go).
//
// Lock order: Registry.mu guards only the key→entry map and is never held
// across model work. Each entry has a lifecycle mutex serializing
// build/restore/checkpoint/evict for that one model; estimates never take
// it (they go through the entry's atomic server pointer, and a server
// detached by a racing evict keeps serving its snapshot — see
// core.Server.Close). Cross-entry operations (LRU enforcement, sweeps) take
// one entry mutex at a time, never two.
package registry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kdesel/internal/core"
	"kdesel/internal/gpu"
	"kdesel/internal/ingest"
	"kdesel/internal/join"
	"kdesel/internal/metrics"
	"kdesel/internal/parallel"
	"kdesel/internal/query"
	"kdesel/internal/shard"
	"kdesel/internal/table"
)

// Typed errors for the routing layer.
var (
	// ErrUnknownModel is returned when a Key was never admitted.
	ErrUnknownModel = errors.New("registry: unknown model")
	// ErrDuplicateModel is returned by Admit for an already-admitted Key.
	ErrDuplicateModel = errors.New("registry: model already admitted")
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("registry: closed")
	// ErrAnalyzeQueueFull is returned by ScheduleAnalyze when the background
	// ANALYZE queue is saturated; the caller can retry or run Analyze
	// synchronously.
	ErrAnalyzeQueueFull = errors.New("registry: analyze queue full")
)

// Config tunes a Registry. The zero value is usable: no eviction, no
// periodic checkpoints, serial host execution, no instrumentation.
type Config struct {
	// MaxResident caps how many models are resident (built, in memory) at
	// once; admitting or restoring past the cap evicts the least-recently-
	// used other model. 0 means unlimited.
	MaxResident int
	// IdleAfter evicts a model that has served no traffic for this long
	// (enforced by Sweep / the background janitor). 0 disables idle eviction.
	IdleAfter time.Duration
	// CheckpointDir is where per-model checkpoint files live. Required for
	// any eviction (an evicted model must be restorable) and for
	// CheckpointEvery; empty disables both.
	CheckpointDir string
	// KeepCheckpoints is the per-model rotation depth: after writing a new
	// checkpoint, older files beyond the newest K are deleted (default 3).
	KeepCheckpoints int
	// CheckpointEvery periodically checkpoints every resident model
	// (enforced by Sweep / the background janitor). 0 disables.
	CheckpointEvery time.Duration
	// SweepEvery is the janitor cadence (default 250ms when any of
	// IdleAfter/CheckpointEvery is set; otherwise no janitor runs).
	// Negative disables the janitor; call Sweep manually.
	SweepEvery time.Duration
	// Workers sizes the one host worker pool shared by every model
	// (semantics of core.Config.Workers: 0/1 serial, n > 1 workers,
	// negative = NumCPU).
	Workers int
	// Device, when non-nil, is the one simulated device every admitted
	// model is placed on (models built with their own Config.Device keep
	// it; this is the default for models that do not specify one).
	Device *gpu.Device
	// Metrics is the shared process registry. Each model's instruments are
	// registered under its Key.MetricPrefix; the registry's own instruments
	// (registry.models_resident, registry.evictions, registry.restores,
	// registry.admissions, registry.analyze_queue_depth) live unprefixed.
	Metrics *metrics.Registry
	// AnalyzeQueue is the capacity of the background ANALYZE queue
	// (default 16).
	AnalyzeQueue int
}

func (c Config) keep() int {
	if c.KeepCheckpoints > 0 {
		return c.KeepCheckpoints
	}
	return 3
}

func (c Config) analyzeQueue() int {
	if c.AnalyzeQueue > 0 {
		return c.AnalyzeQueue
	}
	return 16
}

// entry is one admitted model. srv is the serving handle, atomic because
// estimates load it lock-free while evict/restore swap it; mu serializes
// the lifecycle transitions (build, restore, checkpoint, evict) for this
// model only, so one model's slow transition never blocks another's.
type entry struct {
	key      Key
	tab      *table.Table
	serveCfg core.ServeConfig

	// sharded entries serve through grp instead of srv; shardCfg keeps the
	// runtime half of the group configuration (loss, learner, karma,
	// shard count) for restore-on-demand, which rebuilds the model state
	// itself from the checkpoint frames.
	sharded  bool
	shardCfg shard.Config

	mu  sync.Mutex
	srv atomic.Pointer[core.Server]
	grp atomic.Pointer[shard.Group]

	lastUsed atomic.Int64 // UnixNano of last estimate/feedback
	lastCkpt atomic.Int64 // UnixNano of last checkpoint

	// ckpts is the rotation ring, oldest first; guarded by mu.
	ckpts   []string
	ckptSeq int

	// Continuous ingestion (ingest.go). bridge is atomic so Status and the
	// feedback recorder read it lock-free; ingOn marks that ingestion
	// follows the model across evict/restore; ingCfg is written under mu
	// before the bridge exists and read-only afterwards. fbBuf is the
	// bounded ring of recent feedback for drift-triggered ANALYZE.
	ingOn  atomic.Bool
	ingCfg IngestOptions
	bridge atomic.Pointer[ingest.Bridge]
	fbMu   sync.Mutex
	fbBuf  []query.Feedback
	fbNext int
}

func (e *entry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// resident reports whether the entry currently holds a live serving
// handle of either kind.
func (e *entry) resident() bool { return e.srv.Load() != nil || e.grp.Load() != nil }

// Registry routes per-model operations to the right core.Server and owns
// admission, checkpoint rotation, eviction, and restore. Safe for
// concurrent use. Construct with New.
type Registry struct {
	cfg  Config
	pool *parallel.Pool
	met  *metrics.Registry

	mu     sync.Mutex
	models map[string]*entry
	closed bool

	analyzeCh chan analyzeJob
	stop      chan struct{}
	wg        sync.WaitGroup

	admissions    *metrics.Counter
	evictions     *metrics.Counter
	restores      *metrics.Counter
	analyzes      *metrics.Counter
	driftAnalyzes *metrics.Counter
}

type analyzeJob struct {
	key Key
	fbs []query.Feedback
}

// New builds a registry, starts the single background ANALYZE worker, and
// (when the config calls for it) the janitor that drives idle eviction and
// periodic checkpoints.
func New(cfg Config) *Registry {
	if cfg.CheckpointDir != "" {
		// Best effort: a failure surfaces as an error from the first
		// checkpoint write, with the path in it, not as a panic here.
		_ = os.MkdirAll(cfg.CheckpointDir, 0o755)
	}
	r := &Registry{
		cfg:       cfg,
		pool:      parallel.PoolFor(cfg.Workers),
		met:       cfg.Metrics,
		models:    map[string]*entry{},
		analyzeCh: make(chan analyzeJob, cfg.analyzeQueue()),
		stop:      make(chan struct{}),
	}
	r.pool.Instrument(r.met)
	r.admissions = r.met.Counter("registry.admissions")
	r.evictions = r.met.Counter("registry.evictions")
	r.restores = r.met.Counter("registry.restores")
	r.analyzes = r.met.Counter("registry.analyzes")
	r.driftAnalyzes = r.met.Counter("registry.drift_analyzes")
	r.met.RegisterGaugeFunc("registry.models_resident", func() float64 {
		return float64(r.Resident())
	})
	r.met.RegisterGaugeFunc("registry.models_admitted", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.models))
	})
	r.met.RegisterGaugeFunc("registry.analyze_queue_depth", func() float64 {
		return float64(len(r.analyzeCh))
	})

	r.wg.Add(1)
	go r.analyzeWorker()

	sweep := cfg.SweepEvery
	if sweep == 0 && (cfg.IdleAfter > 0 || cfg.CheckpointEvery > 0) {
		sweep = 250 * time.Millisecond
	}
	if sweep > 0 {
		r.wg.Add(1)
		go r.janitor(sweep)
	}
	return r
}

// Admit builds a model for key over tab and makes it resident. The build
// runs under the model's own lifecycle lock — admitting a large model never
// blocks traffic to other models. buildCfg.Metrics and buildCfg.Workers are
// overridden by the registry's shared resources (per-model metric prefix,
// shared pool); buildCfg.Device defaults to the registry's shared device.
func (r *Registry) Admit(key Key, tab *table.Table, buildCfg core.Config, serveCfg core.ServeConfig) error {
	if len(key.Columns) == 0 {
		return fmt.Errorf("registry: key %q has no columns", key.Table)
	}
	if tab == nil {
		return errors.New("registry: nil table")
	}
	if tab.Dims() != len(key.Columns) {
		return fmt.Errorf("registry: key %v names %d columns but table has %d",
			key, len(key.Columns), tab.Dims())
	}
	ent := &entry{key: key, tab: tab, serveCfg: serveCfg}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.models[key.String()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrDuplicateModel, key)
	}
	r.models[key.String()] = ent
	r.mu.Unlock()

	ent.mu.Lock()
	err := r.buildLocked(ent, buildCfg)
	ent.mu.Unlock()
	if err != nil {
		r.mu.Lock()
		delete(r.models, key.String())
		r.mu.Unlock()
		return err
	}
	r.admissions.Inc()
	r.enforceResidency(key)
	return nil
}

// AdmitSharded admits a sharded model: the sample is partitioned across
// shards shard estimators (internal/shard) whose scatter/gather serving
// is bit-identical to the single-shard path at any shard count. The
// build-config fields that shape the model (SampleSize, Seed, Loss,
// Learner, Karma, Faults) carry over; Metrics and Workers are overridden
// by the registry's shared resources exactly as in Admit, and
// serveCfg.Precision selects every shard's serving tier. Sharded models
// get the same lifecycle as plain ones: per-model metric namespace (plus
// shard<i>. sub-namespaces), checkpoint rotation (one atomic multi-frame
// file covering all shards), eviction, and restore-on-demand.
func (r *Registry) AdmitSharded(key Key, tab *table.Table, buildCfg core.Config, shards int, serveCfg core.ServeConfig) error {
	if len(key.Columns) == 0 {
		return fmt.Errorf("registry: key %q has no columns", key.Table)
	}
	if tab == nil {
		return errors.New("registry: nil table")
	}
	if tab.Dims() != len(key.Columns) {
		return fmt.Errorf("registry: key %v names %d columns but table has %d",
			key, len(key.Columns), tab.Dims())
	}
	ent := &entry{
		key: key, tab: tab, serveCfg: serveCfg, sharded: true,
		shardCfg: shard.Config{
			Shards:     shards,
			SampleSize: buildCfg.SampleSize,
			Seed:       buildCfg.Seed,
			Loss:       buildCfg.Loss,
			Learner:    buildCfg.Learner,
			Karma:      buildCfg.Karma,
			Precision:  serveCfg.Precision,
			Workers:    r.cfg.Workers,
			Faults:     buildCfg.Faults,
		},
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.models[key.String()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrDuplicateModel, key)
	}
	r.models[key.String()] = ent
	r.mu.Unlock()

	ent.mu.Lock()
	err := r.buildGroupLocked(ent)
	ent.mu.Unlock()
	if err != nil {
		r.mu.Lock()
		delete(r.models, key.String())
		r.mu.Unlock()
		return err
	}
	r.admissions.Inc()
	r.enforceResidency(key)
	return nil
}

// buildGroupLocked builds the shard group for ent; caller holds ent.mu.
func (r *Registry) buildGroupLocked(ent *entry) error {
	cfg := ent.shardCfg
	cfg.Metrics = r.met.WithPrefix(ent.key.MetricPrefix())
	cfg.Pool = r.pool
	g, err := shard.Build(ent.tab, cfg)
	if err != nil {
		return err
	}
	ent.grp.Store(g)
	ent.touch()
	return nil
}

// AdmitJoin admits a join model: it samples the fkTab ⋈ pkTab join result
// (join.SampleResult), materializes the joined rows as a synthetic table,
// and admits a normal model over it — so join models get the same serving,
// checkpointing, eviction, and metric namespace as single-table models. key
// must cover the combined attribute order (FK columns then PK columns).
func (r *Registry) AdmitJoin(key Key, fkTab, pkTab *table.Table, fkCol, pkCol, n int, seed int64,
	buildCfg core.Config, serveCfg core.ServeConfig) error {
	if fkTab == nil || pkTab == nil {
		return errors.New("registry: nil table")
	}
	if want := fkTab.Dims() + pkTab.Dims(); len(key.Columns) != want {
		return fmt.Errorf("registry: join key %v names %d columns but join result has %d",
			key, len(key.Columns), want)
	}
	rows, err := join.SampleResult(fkTab, pkTab, fkCol, pkCol, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	jt, err := table.New(len(rows[0]))
	if err != nil {
		return err
	}
	if err := jt.InsertMany(rows); err != nil {
		return err
	}
	return r.Admit(key, jt, buildCfg, serveCfg)
}

// buildLocked builds the estimator and server for ent; caller holds ent.mu.
func (r *Registry) buildLocked(ent *entry, buildCfg core.Config) error {
	view := r.met.WithPrefix(ent.key.MetricPrefix())
	buildCfg.Metrics = view
	buildCfg.Workers = 0 // shared pool installed below
	if buildCfg.Device == nil {
		buildCfg.Device = r.cfg.Device
	}
	est, err := core.Build(ent.tab, buildCfg)
	if err != nil {
		return err
	}
	if r.pool != nil {
		est.SetPool(r.pool)
	}
	r.installLocked(ent, est, view)
	return nil
}

// installLocked wraps est in a server and publishes it; caller holds ent.mu.
func (r *Registry) installLocked(ent *entry, est *core.Estimator, view *metrics.Registry) {
	sc := ent.serveCfg
	sc.Metrics = view
	sc.MetricPrefix = "" // the view already carries the model prefix
	ent.srv.Store(core.NewServer(est, sc))
	ent.touch()
}

// entryFor resolves a key; the registry lock is held only for the map read.
func (r *Registry) entryFor(key Key) (*entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	ent, ok := r.models[key.String()]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownModel, key)
	}
	return ent, nil
}

// server returns the live server for ent, restoring from the newest
// checkpoint when the model was evicted. The fast path is one atomic load.
func (r *Registry) server(ent *entry) (*core.Server, error) {
	if s := ent.srv.Load(); s != nil {
		return s, nil
	}
	ent.mu.Lock()
	s := ent.srv.Load()
	if s == nil {
		var err error
		if s, err = r.restoreLocked(ent); err != nil {
			ent.mu.Unlock()
			return nil, err
		}
	}
	ent.mu.Unlock()
	r.enforceResidency(ent.key)
	return s, nil
}

// group returns the live shard group for ent, restoring from the newest
// checkpoint when the model was evicted. The fast path is one atomic load.
func (r *Registry) group(ent *entry) (*shard.Group, error) {
	if g := ent.grp.Load(); g != nil {
		return g, nil
	}
	ent.mu.Lock()
	g := ent.grp.Load()
	if g == nil {
		var err error
		if g, err = r.restoreGroupLocked(ent); err != nil {
			ent.mu.Unlock()
			return nil, err
		}
	}
	ent.mu.Unlock()
	r.enforceResidency(ent.key)
	return g, nil
}

// restoreGroupLocked rebuilds ent's shard group from its newest checkpoint
// and, for a model with ingestion attached, re-attaches a bridge at the
// restored cursor; caller holds ent.mu.
func (r *Registry) restoreGroupLocked(ent *entry) (*shard.Group, error) {
	if len(ent.ckpts) == 0 {
		return nil, fmt.Errorf("registry: model %v is not resident and has no checkpoint", ent.key)
	}
	cfg := ent.shardCfg
	cfg.Metrics = r.met.WithPrefix(ent.key.MetricPrefix())
	cfg.Pool = r.pool
	g, err := shard.Restore(ent.ckpts[len(ent.ckpts)-1], ent.tab, cfg)
	if err != nil {
		return nil, fmt.Errorf("registry: restore %v: %w", ent.key, err)
	}
	ent.grp.Store(g)
	ent.touch()
	r.restores.Inc()
	if ent.ingOn.Load() {
		if err := r.attachIngestLocked(ent); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// residentLocked ensures ent has a live serving handle, restoring from the
// newest checkpoint when needed; caller holds ent.mu.
func (r *Registry) residentLocked(ent *entry) error {
	if ent.resident() {
		return nil
	}
	var err error
	if ent.sharded {
		_, err = r.restoreGroupLocked(ent)
	} else {
		_, err = r.restoreLocked(ent)
	}
	return err
}

// restoreLocked rebuilds ent's server from its newest checkpoint; caller
// holds ent.mu. Restoration is bit-identical continuation (persist.go), and
// the restored model is re-instrumented under the same metric namespace and
// rewired to the shared pool — registries and pools are not persisted state.
func (r *Registry) restoreLocked(ent *entry) (*core.Server, error) {
	if len(ent.ckpts) == 0 {
		return nil, fmt.Errorf("registry: model %v is not resident and has no checkpoint", ent.key)
	}
	path := ent.ckpts[len(ent.ckpts)-1]
	est, err := core.RestoreCheckpoint(path, ent.tab, r.cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("registry: restore %v: %w", ent.key, err)
	}
	view := r.met.WithPrefix(ent.key.MetricPrefix())
	est.Instrument(view)
	if r.pool != nil {
		est.SetPool(r.pool)
	}
	r.installLocked(ent, est, view)
	r.restores.Inc()
	if ent.ingOn.Load() {
		if err := r.attachIngestLocked(ent); err != nil {
			return nil, err
		}
	}
	return ent.srv.Load(), nil
}

// Estimate routes q to key's model, restoring it first if it was evicted.
// Estimates are served exactly as by core.Server — coalesced and lock-free
// from the model snapshot — so an ANALYZE or checkpoint on any model (this
// one included) does not block them.
func (r *Registry) Estimate(key Key, q query.Range) (float64, error) {
	ent, err := r.entryFor(key)
	if err != nil {
		return 0, err
	}
	if ent.sharded {
		g, err := r.group(ent)
		if err != nil {
			return 0, err
		}
		ent.touch()
		return g.Estimate(q)
	}
	s, err := r.server(ent)
	if err != nil {
		return 0, err
	}
	ent.touch()
	return s.Estimate(q)
}

// EstimateContext is Estimate with deadline/cancellation propagation: the
// context threads through core.Server.EstimateContext into the model's
// coalescer, so a networked caller that gives up unblocks immediately and
// its abandoned batch slot is reclaimed. Restore-on-demand of an evicted
// model is not cancellable (the restored model outlives the request that
// triggered it); the context applies from routing onward.
func (r *Registry) EstimateContext(ctx context.Context, key Key, q query.Range) (float64, error) {
	est, _, err := r.EstimateContextDetail(ctx, key, q)
	return est, err
}

// EstimateContextDetail is EstimateContext plus the degraded flag: true
// when a sharded model lost shards during the scatter and served the
// renormalized survivor estimate. Unsharded models never degrade a single
// request this way and always report false.
func (r *Registry) EstimateContextDetail(ctx context.Context, key Key, q query.Range) (float64, bool, error) {
	ent, err := r.entryFor(key)
	if err != nil {
		return 0, false, err
	}
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	if ent.sharded {
		g, err := r.group(ent)
		if err != nil {
			return 0, false, err
		}
		ent.touch()
		return g.EstimateDetail(ctx, q)
	}
	s, err := r.server(ent)
	if err != nil {
		return 0, false, err
	}
	ent.touch()
	est, err := s.EstimateContext(ctx, q)
	return est, false, err
}

// Feedback routes an observed true selectivity to key's model. A feedback
// racing that model's eviction may be dropped (the serving handle is gone
// by the time it would apply): feedback is advisory tuning signal, and
// blocking it on lifecycle transitions is not worth serializing estimates.
func (r *Registry) Feedback(key Key, q query.Range, actual float64) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	ent.recordFeedback(q, actual)
	if ent.sharded {
		g, err := r.group(ent)
		if err != nil {
			return err
		}
		ent.touch()
		return g.Feedback(q, actual)
	}
	s, err := r.server(ent)
	if err != nil {
		return err
	}
	ent.touch()
	return s.Feedback(q, actual)
}

// FeedbackBatch routes a slice of observations to key's model. For a
// sharded model the records apply one at a time (the group's feedback
// path includes karma sample maintenance, which is per-query).
func (r *Registry) FeedbackBatch(key Key, fbs []query.Feedback) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	for _, fb := range fbs {
		ent.recordFeedback(fb.Query, fb.Actual)
	}
	if ent.sharded {
		g, err := r.group(ent)
		if err != nil {
			return err
		}
		ent.touch()
		for _, fb := range fbs {
			if err := g.Feedback(fb.Query, fb.Actual); err != nil {
				return err
			}
		}
		return nil
	}
	s, err := r.server(ent)
	if err != nil {
		return err
	}
	ent.touch()
	return s.FeedbackBatch(fbs)
}

// Analyze synchronously re-optimizes key's model over fbs (the ANALYZE
// step). It runs under that model's writer lock only: estimates for the
// same model keep serving the pre-ANALYZE snapshot, and other models are
// entirely unaffected.
func (r *Registry) Analyze(key Key, fbs []query.Feedback) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	if ent.sharded {
		g, err := r.group(ent)
		if err != nil {
			return err
		}
		// Round-robin over the shards: each ANALYZE optimizes over one
		// shard's sample while the others keep serving undisturbed.
		err = g.Analyze(fbs)
		if err == nil {
			r.analyzes.Inc()
		}
		return err
	}
	s, err := r.server(ent)
	if err != nil {
		return err
	}
	err = s.Reoptimize(fbs)
	if err == nil {
		r.analyzes.Inc()
	}
	return err
}

// ScheduleAnalyze enqueues an ANALYZE for the single background worker,
// returning immediately. One worker (not one per model) is deliberate:
// ANALYZE is the most compute-hungry operation in the process, and running
// several at once would let background tuning starve the estimate path.
// Queue depth is exported as registry.analyze_queue_depth.
func (r *Registry) ScheduleAnalyze(key Key, fbs []query.Feedback) error {
	if _, err := r.entryFor(key); err != nil {
		return err
	}
	select {
	case r.analyzeCh <- analyzeJob{key: key, fbs: fbs}:
		return nil
	default:
		return ErrAnalyzeQueueFull
	}
}

func (r *Registry) analyzeWorker() {
	defer r.wg.Done()
	for {
		select {
		case job := <-r.analyzeCh:
			// Best-effort: the model may have been removed since scheduling.
			_ = r.Analyze(job.key, job.fbs)
		case <-r.stop:
			return
		}
	}
}

// CheckpointNow atomically checkpoints key's model into its rotation ring,
// pruning files beyond Config.KeepCheckpoints. Requires CheckpointDir.
func (r *Registry) CheckpointNow(key Key) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if g := ent.grp.Load(); g != nil {
		return r.checkpointLocked(ent, g)
	}
	s := ent.srv.Load()
	if s == nil {
		return nil // evicted: its checkpoint is already the latest state
	}
	return r.checkpointLocked(ent, s)
}

// checkpointer is the one method checkpointLocked needs; both core.Server
// and shard.Group satisfy it (a sharded group writes one multi-frame file
// covering all its shards atomically).
type checkpointer interface {
	Checkpoint(path string) error
}

// checkpointLocked writes one rotation checkpoint; caller holds ent.mu.
func (r *Registry) checkpointLocked(ent *entry, s checkpointer) error {
	if r.cfg.CheckpointDir == "" {
		return errors.New("registry: no CheckpointDir configured")
	}
	ent.ckptSeq++
	path := filepath.Join(r.cfg.CheckpointDir,
		fmt.Sprintf("%s-%06d.ckpt", ent.key.fileStem(), ent.ckptSeq))
	if err := s.Checkpoint(path); err != nil {
		return err
	}
	ent.ckpts = append(ent.ckpts, path)
	for len(ent.ckpts) > r.cfg.keep() {
		os.Remove(ent.ckpts[0])
		ent.ckpts = ent.ckpts[1:]
	}
	ent.lastCkpt.Store(time.Now().UnixNano())
	return nil
}

// Evict checkpoints key's model, tears down its server and its metric
// namespace, and releases the memory. The next Estimate (or Feedback)
// for the key transparently restores from that checkpoint. Estimates
// holding the old serving handle finish normally — a closed server still
// serves from its snapshot (core.Server.Close) — and writers racing the
// checkpoint drain under the model's writer lock before the file is cut.
// Evicting a non-resident model is a no-op.
func (r *Registry) Evict(key Key) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	return r.evict(ent)
}

func (r *Registry) evict(ent *entry) error {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	// Flush the ingestion ring into the model before the checkpoint is cut:
	// the frame must capture every buffered mutation and the matching feed
	// cursor. Restore-on-demand re-attaches a fresh bridge at that cursor.
	ent.closeIngestLocked()
	if g := ent.grp.Load(); g != nil {
		// Sharded: one multi-frame checkpoint covers every shard atomically,
		// then the whole group (and its shard<i>.* sub-namespaces, nested
		// under the model prefix) is torn down.
		if err := r.checkpointLocked(ent, g); err != nil {
			return fmt.Errorf("registry: evict %v: %w", ent.key, err)
		}
		ent.grp.Store(nil)
		g.Close()
		r.met.UnregisterGaugeFuncsPrefix(ent.key.MetricPrefix())
		r.evictions.Inc()
		return nil
	}
	s := ent.srv.Load()
	if s == nil {
		return nil
	}
	// Checkpoint before detaching: restore-on-next-estimate (which blocks on
	// ent.mu until this returns) must see the final pre-eviction state.
	if err := r.checkpointLocked(ent, s); err != nil {
		return fmt.Errorf("registry: evict %v: %w", ent.key, err)
	}
	ent.srv.Store(nil)
	s.DetachFeed() // stop change-feed callbacks into the torn-down server
	s.Close()
	// Tear down the model's whole metric namespace: core.health,
	// core.snapshot_age_seconds, bandwidth drift, the serve gauges — every
	// gauge func the model's layers registered under its prefix. Counters
	// and histograms stay (monotonic history survives eviction); a restore
	// re-registers the gauge funcs against the new instances.
	r.met.UnregisterGaugeFuncsPrefix(ent.key.MetricPrefix())
	r.evictions.Inc()
	return nil
}

// enforceResidency evicts least-recently-used models until the resident
// count fits MaxResident, never evicting keep (the model that just became
// resident). Runs outside any entry lock; victims are locked one at a time.
func (r *Registry) enforceResidency(keep Key) {
	if r.cfg.MaxResident <= 0 {
		return
	}
	for {
		var victim *entry
		resident := 0
		r.mu.Lock()
		for _, ent := range r.models {
			if !ent.resident() {
				continue
			}
			resident++
			if ent.key.String() == keep.String() {
				continue
			}
			if victim == nil || ent.lastUsed.Load() < victim.lastUsed.Load() {
				victim = ent
			}
		}
		r.mu.Unlock()
		if resident <= r.cfg.MaxResident || victim == nil {
			return
		}
		_ = r.evict(victim)
	}
}

// Sweep runs one janitor pass: idle models are evicted and stale resident
// models are checkpointed, per Config.IdleAfter and Config.CheckpointEvery.
// The background janitor calls this periodically; tests call it directly
// for deterministic lifecycle transitions.
func (r *Registry) Sweep() {
	now := time.Now().UnixNano()
	r.mu.Lock()
	ents := make([]*entry, 0, len(r.models))
	for _, ent := range r.models {
		ents = append(ents, ent)
	}
	r.mu.Unlock()
	for _, ent := range ents {
		if !ent.resident() {
			continue
		}
		if r.cfg.IdleAfter > 0 && now-ent.lastUsed.Load() > int64(r.cfg.IdleAfter) {
			_ = r.evict(ent)
			continue
		}
		if r.cfg.CheckpointEvery > 0 && now-ent.lastCkpt.Load() > int64(r.cfg.CheckpointEvery) {
			ent.mu.Lock()
			if g := ent.grp.Load(); g != nil {
				_ = r.checkpointLocked(ent, g)
			} else if s := ent.srv.Load(); s != nil {
				_ = r.checkpointLocked(ent, s)
			}
			ent.mu.Unlock()
		}
	}
}

func (r *Registry) janitor(every time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.Sweep()
		case <-r.stop:
			return
		}
	}
}

// Keys returns every admitted key in sorted canonical order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	keys := make([]Key, 0, len(r.models))
	for _, ent := range r.models {
		keys = append(keys, ent.key)
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// ModelStatus is one model's serving state as reported by Status.
type ModelStatus struct {
	// Key identifies the model.
	Key Key
	// Resident reports whether the model is in memory; a non-resident model
	// still serves (restore-on-demand) but its Health/Queries are unknown
	// without paying the restore, so they are zero.
	Resident bool
	// Health is the degradation-ladder state (core.Healthy/Degraded/
	// Fallback) of a resident model.
	Health core.Health
	// Queries is the number of estimates a resident model has served.
	Queries int
	// Shards is the shard count of a sharded model (0 for unsharded).
	Shards int
	// Ingesting reports whether a continuous-ingestion bridge is attached.
	Ingesting bool
	// IngestLag is the bridge's buffered-but-unapplied mutation count,
	// bounded by the configured ring size; 0 when not ingesting.
	IngestLag int
}

// Status reports every admitted model's serving state, sorted by key, for
// readiness probes and operator endpoints. Reads are lock-free per model
// (atomic server pointer + atomic health), so Status never blocks behind an
// ANALYZE, restore, or eviction in progress — a model mid-transition just
// reports non-resident.
func (r *Registry) Status() []ModelStatus {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.models))
	for _, ent := range r.models {
		entries = append(entries, ent)
	}
	r.mu.Unlock()
	out := make([]ModelStatus, 0, len(entries))
	for _, ent := range entries {
		st := ModelStatus{Key: ent.key}
		if g := ent.grp.Load(); g != nil {
			st.Resident = true
			st.Health = g.Health()
			st.Queries = int(g.Queries())
			st.Shards = g.Shards()
		} else if s := ent.srv.Load(); s != nil {
			st.Resident = true
			st.Health = s.Health()
			st.Queries = s.Queries()
		}
		if br := ent.bridge.Load(); br != nil {
			st.Ingesting = true
			st.IngestLag = br.Depth()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Resident returns how many models are currently resident (in memory).
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ent := range r.models {
		if ent.resident() {
			n++
		}
	}
	return n
}

// IsResident reports whether key's model is currently in memory (false
// also for unknown keys).
func (r *Registry) IsResident(key Key) bool {
	r.mu.Lock()
	ent, ok := r.models[key.String()]
	r.mu.Unlock()
	return ok && ent.resident()
}

// Table returns the table backing key's model (for truth computation and
// workload generation), or nil for unknown keys.
func (r *Registry) Table(key Key) *table.Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ent, ok := r.models[key.String()]; ok {
		return ent.tab
	}
	return nil
}

// Close stops the background workers, checkpoints every resident model
// (when a CheckpointDir is configured), closes their servers, and
// unregisters every instrument namespace the registry created. Operations
// after Close return ErrClosed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ents := make([]*entry, 0, len(r.models))
	for _, ent := range r.models {
		ents = append(ents, ent)
	}
	r.mu.Unlock()

	close(r.stop)
	r.wg.Wait()

	for _, ent := range ents {
		ent.mu.Lock()
		// Drain the ingestion ring into the model before the final
		// checkpoint, exactly as eviction does.
		ent.closeIngestLocked()
		if g := ent.grp.Load(); g != nil {
			if r.cfg.CheckpointDir != "" {
				_ = r.checkpointLocked(ent, g)
			}
			ent.grp.Store(nil)
			g.Close()
			r.met.UnregisterGaugeFuncsPrefix(ent.key.MetricPrefix())
		} else if s := ent.srv.Load(); s != nil {
			if r.cfg.CheckpointDir != "" {
				_ = r.checkpointLocked(ent, s)
			}
			ent.srv.Store(nil)
			s.DetachFeed()
			s.Close()
			r.met.UnregisterGaugeFuncsPrefix(ent.key.MetricPrefix())
		}
		ent.mu.Unlock()
	}
	r.met.UnregisterGaugeFuncsPrefix("registry.")
}

// Project materializes the ordered column subset cols of tab as a new
// table — the canonical way to derive the per-model tables a registry
// serves from one base table. Rows are copied; later inserts into tab do
// not propagate (per-model samples are maintained by feedback, not by
// shared storage, matching the paper's per-estimator sample ownership).
func Project(tab *table.Table, cols []int) (*table.Table, error) {
	if tab == nil {
		return nil, errors.New("registry: nil table")
	}
	if len(cols) == 0 {
		return nil, errors.New("registry: empty column subset")
	}
	for _, c := range cols {
		if c < 0 || c >= tab.Dims() {
			return nil, fmt.Errorf("registry: column %d out of range [0,%d)", c, tab.Dims())
		}
	}
	out, err := table.New(len(cols))
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(cols))
	for i := 0; i < tab.Len(); i++ {
		src := tab.Row(i)
		for j, c := range cols {
			row[j] = src[c]
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}
