package registry

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Key identifies one model in a registry: a table name plus the ordered
// column subset the model covers. Order matters — a model over (0,1) and a
// model over (1,0) answer queries phrased in different column orders and are
// distinct models — and the canonical textual form "table(0,1)" is the
// identity used for lookup, metric prefixes, and checkpoint file names.
//
// A join model uses the same scheme with a synthesized table name (e.g.
// "orders⋈customers") over the combined attribute order of the join result.
type Key struct {
	Table   string
	Columns []int
}

// NewKey builds a key, copying cols so callers can reuse their slice.
func NewKey(table string, cols ...int) Key {
	c := make([]int, len(cols))
	copy(c, cols)
	return Key{Table: table, Columns: c}
}

// String renders the canonical form "table(c0,c1,...)". An empty column
// list renders as "table()" — a key over no columns is never valid, so the
// form stays unambiguous.
func (k Key) String() string {
	var sb strings.Builder
	sb.WriteString(k.Table)
	sb.WriteByte('(')
	for i, c := range k.Columns {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	sb.WriteByte(')')
	return sb.String()
}

// ParseKey parses the canonical form produced by String: a table name
// followed by a parenthesized, comma-separated list of non-negative column
// indices, e.g. "orders(0,2)".
func ParseKey(s string) (Key, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Key{}, fmt.Errorf("registry: malformed key %q (want table(c0,c1,...))", s)
	}
	k := Key{Table: s[:open]}
	body := s[open+1 : len(s)-1]
	if body == "" {
		return Key{}, fmt.Errorf("registry: key %q has no columns", s)
	}
	for _, part := range strings.Split(body, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 0 {
			return Key{}, fmt.Errorf("registry: key %q has invalid column %q", s, part)
		}
		k.Columns = append(k.Columns, c)
	}
	return k, nil
}

// MetricPrefix returns the per-model metric namespace, "model.<key>.". Every
// instrument a model's layers register on the shared process registry goes
// under this prefix, and eviction tears the whole namespace down with one
// metrics.UnregisterGaugeFuncsPrefix call.
func (k Key) MetricPrefix() string {
	return "model." + k.String() + "."
}

// fileStem returns a filesystem-safe stem for the key's checkpoint files:
// the key with non-portable runes replaced, plus a short hash of the exact
// canonical form so two keys that sanitize identically cannot share files.
func (k Key) fileStem() string {
	s := k.String()
	h := fnv.New32a()
	h.Write([]byte(s))
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s-%08x", sb.String(), h.Sum32())
}
