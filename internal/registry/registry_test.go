package registry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdesel/internal/core"
	"kdesel/internal/metrics"
	"kdesel/internal/query"
	"kdesel/internal/table"
)

// buildTable makes a d-dimensional clustered table with n rows.
func buildTable(t *testing.T, n, d int, seed int64) *table.Table {
	t.Helper()
	tab, err := table.New(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		center := float64(rng.Intn(3)) * 5
		for j := range row {
			row[j] = center + rng.NormFloat64()
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// dataQuery draws a query likely to overlap data.
func dataQuery(tab *table.Table, rng *rand.Rand) query.Range {
	d := tab.Dims()
	lo := make([]float64, d)
	hi := make([]float64, d)
	anchor := tab.Row(rng.Intn(tab.Len()))
	for j := 0; j < d; j++ {
		w := 0.5 + rng.Float64()*2
		lo[j] = anchor[j] - w
		hi[j] = anchor[j] + w
	}
	return query.NewRange(lo, hi)
}

func feedbackSet(t *testing.T, tab *table.Table, rng *rand.Rand, n int) []query.Feedback {
	t.Helper()
	fbs := make([]query.Feedback, n)
	for i := range fbs {
		q := dataQuery(tab, rng)
		actual, err := tab.Selectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		fbs[i] = query.Feedback{Query: q, Actual: actual}
	}
	return fbs
}

func buildCfg(seed int64) core.Config {
	return core.Config{Mode: core.Adaptive, SampleSize: 64, Seed: seed, DisableMaintenance: true}
}

func TestKeyStringParseRoundTrip(t *testing.T) {
	for _, k := range []Key{
		NewKey("orders", 0),
		NewKey("orders", 0, 2, 1),
		NewKey("a_b.c-d", 7, 7),
	} {
		s := k.String()
		got, err := ParseKey(s)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", s, err)
		}
		if got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
	for _, bad := range []string{"", "t", "t()", "(0)", "t(0,)", "t(-1)", "t(x)"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
	// Column order is identity: (0,1) and (1,0) are distinct models.
	if NewKey("t", 0, 1).String() == NewKey("t", 1, 0).String() {
		t.Error("column order lost in canonical form")
	}
}

func TestProject(t *testing.T) {
	tab := buildTable(t, 50, 3, 1)
	p, err := Project(tab, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 || p.Len() != tab.Len() {
		t.Fatalf("projection shape %dx%d, want %dx2", p.Len(), p.Dims(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		src, got := tab.Row(i), p.Row(i)
		if got[0] != src[2] || got[1] != src[0] {
			t.Fatalf("row %d: %v from %v", i, got, src)
		}
	}
	if _, err := Project(tab, []int{3}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := Project(tab, nil); err == nil {
		t.Error("empty subset accepted")
	}
}

// TestLifecycleEvictRestoreBitIdentical: tune a model with feedback, record
// its estimates, evict it, and estimate again through the registry — the
// transparent restore must reproduce every estimate bit-for-bit
// (checkpoint restoration is bit-identical continuation).
func TestLifecycleEvictRestoreBitIdentical(t *testing.T) {
	tab := buildTable(t, 400, 2, 11)
	r := New(Config{CheckpointDir: t.TempDir(), Metrics: metrics.New()})
	defer r.Close()

	key := NewKey("t", 0, 1)
	if err := r.Admit(key, tab, buildCfg(7), core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit(key, tab, buildCfg(7), core.ServeConfig{}); !errors.Is(err, ErrDuplicateModel) {
		t.Fatalf("duplicate admit: err = %v, want ErrDuplicateModel", err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, fb := range feedbackSet(t, tab, rng, 20) {
		if _, err := r.Estimate(key, fb.Query); err != nil {
			t.Fatal(err)
		}
		if err := r.Feedback(key, fb.Query, fb.Actual); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]query.Range, 30)
	want := make([]float64, len(qs))
	for i := range qs {
		qs[i] = dataQuery(tab, rng)
		var err error
		if want[i], err = r.Estimate(key, qs[i]); err != nil {
			t.Fatal(err)
		}
	}

	if err := r.Evict(key); err != nil {
		t.Fatal(err)
	}
	if r.IsResident(key) {
		t.Fatal("model still resident after Evict")
	}
	for i, q := range qs {
		got, err := r.Estimate(key, q) // transparent restore on first call
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Errorf("query %d: restored estimate %v != pre-eviction %v", i, got, want[i])
		}
	}
	if !r.IsResident(key) {
		t.Error("model not resident after restore")
	}

	if _, err := r.Estimate(NewKey("nope", 0), qs[0]); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown key: err = %v, want ErrUnknownModel", err)
	}
}

// TestCheckpointRotationKeepsLastK: repeated checkpoints prune old files.
func TestCheckpointRotationKeepsLastK(t *testing.T) {
	dir := t.TempDir()
	tab := buildTable(t, 200, 2, 5)
	r := New(Config{CheckpointDir: dir, KeepCheckpoints: 2})
	defer r.Close()
	key := NewKey("rot", 0, 1)
	if err := r.Admit(key, tab, buildCfg(1), core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.CheckpointNow(key); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("rotation left %d files %v, want 2", len(files), files)
	}
}

// TestLRUAndIdleEviction: residency cap evicts the least-recently-used
// model, and Sweep evicts idle models past IdleAfter.
func TestLRUAndIdleEviction(t *testing.T) {
	tab := buildTable(t, 200, 1, 9)
	r := New(Config{
		MaxResident:   2,
		IdleAfter:     30 * time.Millisecond,
		SweepEvery:    -1, // deterministic: tests call Sweep directly
		CheckpointDir: t.TempDir(),
	})
	defer r.Close()
	keys := []Key{NewKey("t", 0), NewKey("u", 0), NewKey("v", 0)}
	for i, k := range keys {
		if err := r.Admit(k, tab, buildCfg(int64(i)), core.ServeConfig{MaxBatch: 1}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct lastUsed stamps
	}
	if got := r.Resident(); got != 2 {
		t.Fatalf("resident = %d, want 2 (MaxResident)", got)
	}
	if r.IsResident(keys[0]) {
		t.Error("LRU victim should be the first-admitted model")
	}
	// Touching the evicted model restores it and evicts the new LRU.
	if _, err := r.Estimate(keys[0], dataQuery(tab, rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	if !r.IsResident(keys[0]) || r.Resident() != 2 {
		t.Errorf("after restore: resident(t)=%v total=%d, want true/2", r.IsResident(keys[0]), r.Resident())
	}

	time.Sleep(40 * time.Millisecond)
	r.Sweep()
	if got := r.Resident(); got != 0 {
		t.Errorf("after idle sweep: resident = %d, want 0", got)
	}
	// All still servable.
	for _, k := range keys {
		if _, err := r.Estimate(k, dataQuery(tab, rand.New(rand.NewSource(4)))); err != nil {
			t.Errorf("estimate %v after idle eviction: %v", k, err)
		}
	}
}

// TestPerModelMetricNamespace: two models on one shared registry get
// disjoint metric namespaces; evicting one tears down exactly its gauge
// funcs and leaves the other's (the multi-model generalization of the
// serve.queue_depth collision bug).
func TestPerModelMetricNamespace(t *testing.T) {
	met := metrics.New()
	tab := buildTable(t, 300, 2, 21)
	r := New(Config{CheckpointDir: t.TempDir(), Metrics: met})
	defer r.Close()
	a, b := NewKey("t", 0, 1), NewKey("t", 1, 0)
	for i, k := range []Key{a, b} {
		pt, err := Project(tab, k.Columns)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Admit(k, pt, buildCfg(int64(i)), core.ServeConfig{MaxBatch: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Estimate(k, dataQuery(pt, rand.New(rand.NewSource(int64(i))))); err != nil {
			t.Fatal(err)
		}
	}
	snap := met.Snapshot()
	for _, k := range []Key{a, b} {
		for _, g := range []string{"core.health", "serve.queue_depth"} {
			if _, ok := snap.Gauges[k.MetricPrefix()+g]; !ok {
				t.Errorf("gauge %s%s missing from shared registry", k.MetricPrefix(), g)
			}
		}
		if _, ok := snap.Histograms[k.MetricPrefix()+"core.estimate_seconds"]; !ok {
			t.Errorf("histogram %score.estimate_seconds missing", k.MetricPrefix())
		}
	}
	for _, g := range []string{"registry.models_resident", "registry.analyze_queue_depth"} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("registry gauge %s missing", g)
		}
	}
	if got := snap.Gauges["registry.models_resident"]; got != 2 {
		t.Errorf("models_resident = %v, want 2", got)
	}

	if err := r.Evict(a); err != nil {
		t.Fatal(err)
	}
	// Gauge FUNCS must be torn down (a dead closure reports stale state and
	// pins the evicted model); plain gauges, counters, and histograms are
	// inert values and survive like any other monotonic history.
	snap = met.Snapshot()
	for _, g := range []string{"core.health", "core.snapshot_age_seconds", "serve.queue_depth"} {
		if _, ok := snap.Gauges[a.MetricPrefix()+g]; ok {
			t.Errorf("evicted model's gauge func %s%s still registered", a.MetricPrefix(), g)
		}
	}
	if _, ok := snap.Gauges[b.MetricPrefix()+"serve.queue_depth"]; !ok {
		t.Error("surviving model's queue_depth gauge was torn down by the other's eviction")
	}
	if got := snap.Gauges["registry.models_resident"]; got != 1 {
		t.Errorf("models_resident after eviction = %v, want 1", got)
	}
}

// TestAnalyzeIsolation: a synchronous ANALYZE on one model must not block
// estimates on another (per-model writer locks), nor estimates on itself
// (snapshot isolation).
func TestAnalyzeIsolation(t *testing.T) {
	tabA := buildTable(t, 500, 2, 31)
	tabB := buildTable(t, 300, 2, 32)
	r := New(Config{CheckpointDir: t.TempDir()})
	defer r.Close()
	ka, kb := NewKey("a", 0, 1), NewKey("b", 0, 1)
	cfgA := buildCfg(1)
	cfgA.SampleSize = 256
	if err := r.Admit(ka, tabA, cfgA, core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit(kb, tabB, buildCfg(2), core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	fbs := feedbackSet(t, tabA, rand.New(rand.NewSource(33)), 64)

	analyzeDone := make(chan error, 1)
	go func() { analyzeDone <- r.Analyze(ka, fbs) }()

	rng := rand.New(rand.NewSource(34))
	servedDuring := 0
	for {
		select {
		case err := <-analyzeDone:
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if servedDuring == 0 {
				t.Skip("ANALYZE finished before any concurrent estimate; nothing to assert")
			}
			return
		default:
		}
		for _, k := range []Key{ka, kb} {
			est, err := r.Estimate(k, dataQuery(r.Table(k), rng))
			if err != nil {
				t.Fatalf("estimate %v during analyze: %v", k, err)
			}
			if math.IsNaN(est) || est < 0 || est > 1 {
				t.Fatalf("estimate %v escapes [0,1]", est)
			}
		}
		servedDuring++
	}
}

// TestScheduleAnalyze: the background worker drains the queue and applies
// the re-optimization; the queue rejects overflow with a typed error.
func TestScheduleAnalyze(t *testing.T) {
	tab := buildTable(t, 300, 2, 41)
	met := metrics.New()
	r := New(Config{Metrics: met, AnalyzeQueue: 4})
	defer r.Close()
	key := NewKey("t", 0, 1)
	if err := r.Admit(key, tab, buildCfg(1), core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	fbs := feedbackSet(t, tab, rand.New(rand.NewSource(42)), 16)
	if err := r.ScheduleAnalyze(key, fbs); err != nil {
		t.Fatal(err)
	}
	if err := r.ScheduleAnalyze(NewKey("nope", 0), fbs); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("schedule unknown: err = %v, want ErrUnknownModel", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for met.Counter("registry.analyzes").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background analyze never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJoinModelRoutesLikeBaseModels: a join model admitted via AdmitJoin
// serves estimates and survives evict→restore exactly like a single-table
// model.
func TestJoinModelRoutesLikeBaseModels(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pk, err := table.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := pk.Insert([]float64{float64(i), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	fk, err := table.New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := fk.Insert([]float64{rng.NormFloat64() * 3, float64(rng.Intn(100))}); err != nil {
			t.Fatal(err)
		}
	}
	r := New(Config{CheckpointDir: t.TempDir()})
	defer r.Close()
	key := NewKey("fk⋈pk", 0, 1, 2, 3)
	if err := r.AdmitJoin(key, fk, pk, 1, 0, 256, 52, buildCfg(1), core.ServeConfig{MaxBatch: 1}); err != nil {
		t.Fatal(err)
	}
	jt := r.Table(key)
	if jt == nil || jt.Dims() != 4 {
		t.Fatalf("join table dims = %v, want 4", jt)
	}
	q := dataQuery(jt, rng)
	want, err := r.Estimate(key, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Evict(key); err != nil {
		t.Fatal(err)
	}
	got, err := r.Estimate(key, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("join model restore: %v != %v", got, want)
	}
}

// TestConcurrentLifecycle races estimates and feedback across many models
// against evictions, restores, scheduled ANALYZEs, and sweeps. Run with
// -race (the Makefile race-resilience target includes this package). The
// assertions are liveness and the [0,1] output contract; lost feedback
// racing an eviction is documented and tolerated.
func TestConcurrentLifecycle(t *testing.T) {
	met := metrics.New()
	r := New(Config{
		MaxResident:   3,
		CheckpointDir: t.TempDir(),
		Metrics:       met,
		SweepEvery:    -1,
	})
	defer r.Close()
	const nModels = 4
	keys := make([]Key, nModels)
	tabs := make([]*table.Table, nModels)
	for i := range keys {
		keys[i] = NewKey("m", i)
		tabs[i] = buildTable(t, 200, 1, int64(60+i))
		if err := r.Admit(keys[i], tabs[i], buildCfg(int64(i)), core.ServeConfig{MaxBatch: 4, MaxWait: 10 * time.Microsecond, Metrics: met}); err != nil {
			t.Fatal(err)
		}
	}

	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(70 + c)))
			for !stopFlag.Load() {
				i := rng.Intn(nModels)
				q := dataQuery(tabs[i], rng)
				est, err := r.Estimate(keys[i], q)
				if err != nil {
					t.Errorf("estimate %v: %v", keys[i], err)
					return
				}
				if math.IsNaN(est) || est < 0 || est > 1 {
					t.Errorf("estimate %v escapes [0,1]", est)
					return
				}
				if rng.Intn(4) == 0 {
					actual, err := tabs[i].Selectivity(q)
					if err != nil {
						t.Error(err)
						return
					}
					if err := r.Feedback(keys[i], q, actual); err != nil {
						t.Errorf("feedback %v: %v", keys[i], err)
						return
					}
				}
			}
		}()
	}
	// Lifecycle churn: evictions, sweeps, scheduled analyzes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for !stopFlag.Load() {
			i := rng.Intn(nModels)
			switch rng.Intn(3) {
			case 0:
				if err := r.Evict(keys[i]); err != nil {
					t.Errorf("evict %v: %v", keys[i], err)
					return
				}
			case 1:
				r.Sweep()
			case 2:
				fbs := []query.Feedback{}
				for j := 0; j < 4; j++ {
					q := dataQuery(tabs[i], rng)
					actual, _ := tabs[i].Selectivity(q)
					fbs = append(fbs, query.Feedback{Query: q, Actual: actual})
				}
				_ = r.ScheduleAnalyze(keys[i], fbs) // queue-full is fine here
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stopFlag.Store(true)
	wg.Wait()

	if got := r.Resident(); got > 3 {
		t.Errorf("resident = %d exceeds MaxResident", got)
	}
	snap := met.Snapshot()
	if snap.Gauges["registry.models_admitted"] != nModels {
		t.Errorf("models_admitted = %v, want %d", snap.Gauges["registry.models_admitted"], nModels)
	}
}

// TestCloseCheckpointsAndRejects: Close checkpoints resident models, tears
// down instruments, and subsequent calls fail typed.
func TestCloseCheckpointsAndRejects(t *testing.T) {
	dir := t.TempDir()
	met := metrics.New()
	tab := buildTable(t, 150, 1, 81)
	r := New(Config{CheckpointDir: dir, Metrics: met})
	key := NewKey("t", 0)
	if err := r.Admit(key, tab, buildCfg(1), core.ServeConfig{MaxBatch: 4, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) == 0 {
		t.Error("Close did not checkpoint the resident model")
	}
	if _, err := r.Estimate(key, dataQuery(tab, rand.New(rand.NewSource(1)))); !errors.Is(err, ErrClosed) {
		t.Errorf("estimate after Close: err = %v, want ErrClosed", err)
	}
	snap := met.Snapshot()
	for _, g := range []string{
		key.MetricPrefix() + "core.health",
		key.MetricPrefix() + "serve.queue_depth",
		"registry.models_resident",
		"registry.analyze_queue_depth",
	} {
		if _, ok := snap.Gauges[g]; ok {
			t.Errorf("gauge func %s survives registry Close", g)
		}
	}
}

// TestEvictionRacesEstimateContext: eviction/restore churn (including a
// sharded entry) racing EstimateContext calls whose contexts cancel
// mid-estimate. Estimates either answer from a consistent snapshot or fail
// with the context's own error — never a torn result, never an internal
// error — and the registry survives the churn with residency intact. Run
// under -race this is the lifecycle half of the chaos suite.
func TestEvictionRacesEstimateContext(t *testing.T) {
	met := metrics.New()
	r := New(Config{
		MaxResident:   2,
		CheckpointDir: t.TempDir(),
		Metrics:       met,
		SweepEvery:    -1,
	})
	defer r.Close()

	const nModels = 3
	keys := make([]Key, nModels)
	tabs := make([]*table.Table, nModels)
	for i := range keys {
		keys[i] = NewKey("m", i, i+10)
		tabs[i] = buildTable(t, 400, 2, int64(160+i))
		var err error
		if i == nModels-1 {
			// The last entry is sharded: its evict path checkpoints all
			// shards atomically and its estimates scatter/gather.
			err = r.AdmitSharded(keys[i], tabs[i],
				core.Config{SampleSize: 512, Seed: int64(i)}, 2, core.ServeConfig{})
		} else {
			err = r.Admit(keys[i], tabs[i], buildCfg(int64(i)), core.ServeConfig{})
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	var served, canceled atomic.Int64
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(170 + c)))
			for !stopFlag.Load() {
				i := rng.Intn(nModels)
				q := dataQuery(tabs[i], rng)
				ctx, cancel := context.WithCancel(context.Background())
				if rng.Intn(3) == 0 {
					// Cancel mid-estimate from a racing goroutine (delay
					// drawn here: the rng is not goroutine-safe).
					delay := time.Duration(rng.Intn(50)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				est, err := r.EstimateContext(ctx, keys[i], q)
				switch {
				case err == nil:
					if math.IsNaN(est) || est < 0 || est > 1 {
						t.Errorf("estimate %v escapes [0,1]", est)
						cancel()
						return
					}
					served.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					canceled.Add(1)
				default:
					t.Errorf("estimate %v: %v", keys[i], err)
					cancel()
					return
				}
				cancel()
			}
		}()
	}
	// Churn: direct evictions plus LRU pressure from restores.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(199))
		for !stopFlag.Load() {
			if err := r.Evict(keys[rng.Intn(nModels)]); err != nil {
				t.Errorf("evict: %v", err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stopFlag.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no estimate survived the churn; the test exercised nothing")
	}
	if canceled.Load() == 0 {
		t.Log("note: no estimate observed a cancellation this run")
	}
	if got := r.Resident(); got > 2 {
		t.Errorf("resident = %d exceeds MaxResident", got)
	}
	// The sharded entry still answers deterministically after the churn:
	// two back-to-back estimates through restore-from-checkpoint agree.
	q := dataQuery(tabs[nModels-1], rand.New(rand.NewSource(201)))
	a, err := r.Estimate(keys[nModels-1], q)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Evict(keys[nModels-1]); err != nil {
		t.Fatal(err)
	}
	b, err := r.Estimate(keys[nModels-1], q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("sharded estimate changed across evict/restore: %x != %x",
			math.Float64bits(a), math.Float64bits(b))
	}
}
