package registry

import (
	"math/rand"
	"testing"
	"time"

	"kdesel/internal/core"
	"kdesel/internal/metrics"
	"kdesel/internal/query"
)

// ingestCfg builds an Adaptive config so the apply path actually maintains
// the sample (DisableMaintenance would reduce ingestion to cursor
// bookkeeping).
func ingestCfg(seed int64) core.Config {
	return core.Config{Mode: core.Adaptive, SampleSize: 64, Seed: seed}
}

func drainIngest(t *testing.T, r *Registry, key Key) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := r.IngestStats(key)
		if !ok {
			t.Fatal("no bridge attached")
		}
		if st.Depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAttachIngestLifecycle(t *testing.T) {
	reg := New(Config{Metrics: metrics.New(), SweepEvery: -1})
	defer reg.Close()
	key := NewKey("t", 0, 1)
	tab := buildTable(t, 300, 2, 1)
	if err := reg.Admit(key, tab, ingestCfg(7), core.ServeConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.IngestStats(key); ok {
		t.Fatal("bridge reported before AttachIngest")
	}
	if err := reg.AttachIngest(key, IngestOptions{RingSize: 64}); err != nil {
		t.Fatal(err)
	}
	// Attaching again is a no-op, not an error.
	if err := reg.AttachIngest(key, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if err := reg.IngestRows(key, rows); err != nil {
		t.Fatal(err)
	}
	drainIngest(t, reg, key)
	st, _ := reg.IngestStats(key)
	if st.Applied != int64(len(rows)) || st.Cursor != uint64(len(rows)) {
		t.Fatalf("stats %+v: want Applied=Cursor=%d", st, len(rows))
	}
	found := false
	for _, ms := range reg.Status() {
		if ms.Key.String() == key.String() {
			found = true
			if !ms.Ingesting {
				t.Fatalf("status %+v: want Ingesting", ms)
			}
		}
	}
	if !found {
		t.Fatal("model missing from Status")
	}
	n, err := reg.IngestDeleteWhere(key, query.NewRange([]float64{0.5, 1.5}, []float64{1.5, 2.5}))
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("IngestDeleteWhere deleted %d rows, want >= 1 (the ingested {1,2})", n)
	}
	if err := reg.DetachIngest(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.IngestStats(key); ok {
		t.Fatal("bridge survived DetachIngest")
	}
	// The direct per-mutation path is restored: mutations still reach the
	// model (and an estimate still serves).
	if err := tab.Insert([]float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Estimate(key, query.NewRange([]float64{0, 0}, []float64{4, 4})); err != nil {
		t.Fatal(err)
	}
}

// TestIngestRowsAutoAttaches checks IngestRows on a model without a bridge
// attaches one with default options first.
func TestIngestRowsAutoAttaches(t *testing.T) {
	reg := New(Config{Metrics: metrics.New(), SweepEvery: -1})
	defer reg.Close()
	key := NewKey("t", 0, 1)
	if err := reg.Admit(key, buildTable(t, 200, 2, 2), ingestCfg(9), core.ServeConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.IngestRows(key, [][]float64{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	drainIngest(t, reg, key)
	if st, ok := reg.IngestStats(key); !ok || st.Applied != 1 {
		t.Fatalf("auto-attach failed: ok=%v stats=%+v", ok, st)
	}
}

// TestIngestSurvivesEvictRestore checks the sticky attachment: eviction
// flushes and closes the bridge before the checkpoint, and restore-on-
// demand re-attaches a new bridge that continues the cursor.
func TestIngestSurvivesEvictRestore(t *testing.T) {
	dir := t.TempDir()
	reg := New(Config{Metrics: metrics.New(), CheckpointDir: dir, SweepEvery: -1})
	defer reg.Close()
	key := NewKey("t", 0, 1)
	tab := buildTable(t, 300, 2, 3)
	if err := reg.Admit(key, tab, ingestCfg(11), core.ServeConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.AttachIngest(key, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	if err := reg.IngestRows(key, rows); err != nil {
		t.Fatal(err)
	}
	drainIngest(t, reg, key)

	if err := reg.Evict(key); err != nil {
		t.Fatal(err)
	}
	if reg.IsResident(key) {
		t.Fatal("model still resident after Evict")
	}
	if _, ok := reg.IngestStats(key); ok {
		t.Fatal("bridge survived eviction")
	}
	// Restore-on-demand: serving traffic brings the model back and
	// re-attaches the bridge at the restored cursor.
	if _, err := reg.Estimate(key, query.NewRange([]float64{-1, -1}, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}
	st, ok := reg.IngestStats(key)
	if !ok {
		t.Fatal("bridge not re-attached after restore")
	}
	if st.Cursor != uint64(len(rows)) {
		t.Fatalf("restored cursor %d, want %d (continuation)", st.Cursor, len(rows))
	}
	// The re-attached bridge keeps ingesting with continued numbering.
	if err := reg.IngestRows(key, rows[:5]); err != nil {
		t.Fatal(err)
	}
	drainIngest(t, reg, key)
	st, _ = reg.IngestStats(key)
	if st.Cursor != uint64(len(rows)+5) {
		t.Fatalf("cursor %d after re-attach, want %d", st.Cursor, len(rows)+5)
	}
}

// TestIngestShardedModel checks the bridge path through a shard group.
func TestIngestShardedModel(t *testing.T) {
	reg := New(Config{Metrics: metrics.New(), SweepEvery: -1})
	defer reg.Close()
	key := NewKey("t", 0, 1)
	tab := buildTable(t, 400, 2, 5)
	if err := reg.AdmitSharded(key, tab, ingestCfg(13), 4, core.ServeConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.AttachIngest(key, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		if err := tab.Insert([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	drainIngest(t, reg, key)
	st, _ := reg.IngestStats(key)
	if st.Applied != 30 || st.ApplyErrors != 0 {
		t.Fatalf("stats %+v: want 30 applied, no errors", st)
	}
	if _, err := reg.Estimate(key, query.NewRange([]float64{-1, -1}, []float64{1, 1})); err != nil {
		t.Fatal(err)
	}
}
