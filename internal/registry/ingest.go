package registry

import (
	"fmt"

	"kdesel/internal/ingest"
	"kdesel/internal/query"
	"kdesel/internal/table"
)

// IngestOptions configures continuous ingestion for one model. The zero
// value is usable: default ring and batch sizes, default drift detection,
// drift-triggered ANALYZE once 8 recent feedback observations exist.
type IngestOptions struct {
	// RingSize bounds the mutation buffer (see ingest.Config.RingSize).
	RingSize int
	// MaxBatch caps mutations per synchronized apply (see ingest.Config).
	MaxBatch int
	// Drift tunes the insert-stream drift detector.
	Drift ingest.DriftConfig
	// AnalyzeMin is how many recent feedback observations must exist for a
	// drift trigger to schedule a background ANALYZE (default 8; negative
	// disables drift-triggered ANALYZE).
	AnalyzeMin int
}

// ingestFeedbackKeep bounds the per-model ring of recent feedback kept for
// drift-triggered ANALYZE.
const ingestFeedbackKeep = 64

// entryApplier routes bridge batches to the entry's current serving
// handle. It never restores an evicted model: eviction closes the bridge
// first (flushing the ring), so a nil handle can only be the brief
// teardown window of a racing evict. Applying counts as model use —
// a model under active ingestion is not idle.
type entryApplier struct{ ent *entry }

func (a entryApplier) ApplyMutations(ms []table.Mutation) error {
	a.ent.touch()
	if g := a.ent.grp.Load(); g != nil {
		return g.ApplyMutations(ms)
	}
	if s := a.ent.srv.Load(); s != nil {
		return s.ApplyMutations(ms)
	}
	return fmt.Errorf("registry: model %v is not resident", a.ent.key)
}

// AttachIngest switches key's model from the per-mutation direct feed path
// to a bounded-lag ingestion bridge (internal/ingest): mutations buffer in
// a ring and apply in batches under the model's writer lock with one
// snapshot republish per batch, drift in the insert stream schedules a
// background ANALYZE, and the model's checkpoint frames carry the feed
// cursor. The attachment is sticky: eviction flushes and closes the bridge
// before the checkpoint is cut, and restore-on-demand re-attaches a new
// bridge at the restored cursor. Attaching to an already-ingesting model
// is a no-op (the original options stay in force); restoring the
// per-mutation path requires DetachIngest.
func (r *Registry) AttachIngest(key Key, opts IngestOptions) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.bridge.Load() != nil {
		ent.ingOn.Store(true)
		return nil
	}
	ent.ingCfg = opts
	ent.ingOn.Store(true)
	if err := r.residentLocked(ent); err != nil {
		return err
	}
	return r.attachIngestLocked(ent)
}

// DetachIngest closes key's ingestion bridge (applying everything it
// buffered) and re-subscribes the model's direct synchronized feed path.
func (r *Registry) DetachIngest(key Key) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	ent.ingOn.Store(false)
	br := ent.bridge.Swap(nil)
	if br == nil {
		return nil
	}
	cerr := br.Close()
	if g := ent.grp.Load(); g != nil {
		ent.tab.Subscribe(g)
	} else if s := ent.srv.Load(); s != nil {
		ent.tab.Subscribe(s)
	}
	return cerr
}

// attachIngestLocked detaches the model's direct feed subscription and
// starts a bridge continuing from the model's current cursor; caller holds
// ent.mu and the model is resident. No-op when a bridge already runs.
func (r *Registry) attachIngestLocked(ent *entry) error {
	if ent.bridge.Load() != nil {
		return nil
	}
	var cursor uint64
	if g := ent.grp.Load(); g != nil {
		g.Detach()
		cursor = g.IngestCursor()
	} else if s := ent.srv.Load(); s != nil {
		s.DetachFeed()
		cursor = s.IngestCursor()
	} else {
		return fmt.Errorf("registry: model %v is not resident", ent.key)
	}
	br, err := ingest.Attach(ent.tab, entryApplier{ent}, ingest.Config{
		RingSize: ent.ingCfg.RingSize,
		MaxBatch: ent.ingCfg.MaxBatch,
		Cursor:   cursor,
		Drift:    ent.ingCfg.Drift,
		OnDrift:  func(d ingest.Drift) { r.onDrift(ent, d) },
		Metrics:  r.met.WithPrefix(ent.key.MetricPrefix()),
	})
	if err != nil {
		return err
	}
	ent.bridge.Store(br)
	return nil
}

// closeIngestLocked flushes and closes ent's bridge, if any; caller holds
// ent.mu. Called before eviction checkpoints so the checkpoint captures
// every buffered mutation and the matching cursor.
func (ent *entry) closeIngestLocked() {
	if br := ent.bridge.Swap(nil); br != nil {
		_ = br.Close()
	}
}

// onDrift runs on the bridge's applier goroutine, so it only schedules:
// the background ANALYZE worker does the optimization. Models with no
// recent feedback skip the trigger — ANALYZE needs queries to tune
// against, and a write-only model gets re-tuned on its first workload.
func (r *Registry) onDrift(ent *entry, d ingest.Drift) {
	min := ent.ingCfg.AnalyzeMin
	if min == 0 {
		min = 8
	}
	if min < 0 {
		return
	}
	fbs := ent.recentFeedback()
	if len(fbs) < min {
		return
	}
	if err := r.ScheduleAnalyze(ent.key, fbs); err == nil {
		r.driftAnalyzes.Inc()
	}
}

// recordFeedback keeps the last ingestFeedbackKeep observations for
// drift-triggered ANALYZE; only models with ingestion attached pay for it.
func (ent *entry) recordFeedback(q query.Range, actual float64) {
	if !ent.ingOn.Load() {
		return
	}
	ent.fbMu.Lock()
	if len(ent.fbBuf) < ingestFeedbackKeep {
		ent.fbBuf = append(ent.fbBuf, query.Feedback{Query: q, Actual: actual})
	} else {
		ent.fbBuf[ent.fbNext] = query.Feedback{Query: q, Actual: actual}
	}
	ent.fbNext = (ent.fbNext + 1) % ingestFeedbackKeep
	ent.fbMu.Unlock()
}

func (ent *entry) recentFeedback() []query.Feedback {
	ent.fbMu.Lock()
	defer ent.fbMu.Unlock()
	return append([]query.Feedback(nil), ent.fbBuf...)
}

// IngestRows appends rows to key's backing table through the change feed.
// A default ingestion bridge is attached first if none is (restoring the
// model if it was evicted), so serving-API writers always get the batched,
// backpressured path — never an unsynchronized sample mutation. Blocks
// when the ring is full: backpressure propagates to the writer.
func (r *Registry) IngestRows(key Key, rows [][]float64) error {
	ent, err := r.entryFor(key)
	if err != nil {
		return err
	}
	if err := r.ensureIngest(ent); err != nil {
		return err
	}
	return ent.tab.InsertMany(rows)
}

// IngestDeleteWhere deletes every row matching q from key's backing table
// through the change feed, returning how many were removed. Attaches a
// default bridge first like IngestRows.
func (r *Registry) IngestDeleteWhere(key Key, q query.Range) (int, error) {
	ent, err := r.entryFor(key)
	if err != nil {
		return 0, err
	}
	if err := r.ensureIngest(ent); err != nil {
		return 0, err
	}
	return ent.tab.DeleteWhere(q)
}

// ensureIngest attaches a default bridge when none is attached.
func (r *Registry) ensureIngest(ent *entry) error {
	if ent.bridge.Load() != nil {
		return nil
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.bridge.Load() != nil {
		return nil
	}
	ent.ingOn.Store(true)
	if err := r.residentLocked(ent); err != nil {
		return err
	}
	return r.attachIngestLocked(ent)
}

// IngestStats returns the bridge statistics for key's model; ok is false
// when no bridge is attached (or the key is unknown).
func (r *Registry) IngestStats(key Key) (ingest.Stats, bool) {
	ent, err := r.entryFor(key)
	if err != nil {
		return ingest.Stats{}, false
	}
	br := ent.bridge.Load()
	if br == nil {
		return ingest.Stats{}, false
	}
	return br.Stats(), true
}

// IngestLag returns the buffered-but-unapplied mutation count for key's
// model; zero when no bridge is attached.
func (r *Registry) IngestLag(key Key) int {
	st, ok := r.IngestStats(key)
	if !ok {
		return 0
	}
	return st.Depth
}
