package optimize

import (
	"fmt"
	"math"
	"sort"
)

// NelderMead is a derivative-free simplex minimizer with box constraints
// enforced by projection. It backs the sample-driven bandwidth selectors
// whose criteria (SCV/LSCV) are cheaper to evaluate than to differentiate,
// and serves as a fallback local method in the global phase.
type NelderMead struct {
	// MaxIter caps the number of iterations (default 400).
	MaxIter int
	// Tol stops when the simplex function-value spread falls below it
	// (default 1e-10).
	Tol float64
	// Step is the relative size of the initial simplex (default 0.1).
	Step float64
}

func (o NelderMead) maxIter() int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	return 400
}

func (o NelderMead) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-10
}

func (o NelderMead) step() float64 {
	if o.Step > 0 {
		return o.Step
	}
	return 0.1
}

// Minimize implements Minimizer. The objective is always called with a nil
// gradient.
func (o NelderMead) Minimize(f Objective, x0 []float64, b Bounds) (Result, error) {
	d := len(x0)
	if d == 0 {
		return Result{}, fmt.Errorf("optimize: empty starting point")
	}
	if err := b.Validate(d); err != nil {
		return Result{}, err
	}

	evals := 0
	eval := func(x []float64) float64 {
		b.Clamp(x)
		evals++
		v := f(x, nil)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Initial simplex: x0 plus a perturbation along each axis.
	verts := make([][]float64, d+1)
	vals := make([]float64, d+1)
	verts[0] = cloneVec(x0)
	vals[0] = eval(verts[0])
	for i := 0; i < d; i++ {
		v := cloneVec(x0)
		h := o.step() * math.Max(math.Abs(v[i]), 1)
		v[i] += h
		if v[i] > b.Hi[i] {
			v[i] = x0[i] - h
		}
		verts[i+1] = v
		vals[i+1] = eval(v)
	}

	order := make([]int, d+1)
	centroid := make([]float64, d)
	trial := make([]float64, d)
	trial2 := make([]float64, d)

	const (
		reflect  = 1.0
		expand   = 2.0
		contract = 0.5
		shrink   = 0.5
	)

	iters := 0
	converged := false
	for ; iters < o.maxIter(); iters++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })
		bestI, worstI := order[0], order[d]
		if math.Abs(vals[worstI]-vals[bestI]) <= o.tol()*(1+math.Abs(vals[bestI])) {
			converged = true
			break
		}

		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for _, i := range order[:d] {
			for j := range centroid {
				centroid[j] += verts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(d)
		}

		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + reflect*(centroid[j]-verts[worstI][j])
		}
		fr := eval(trial)
		switch {
		case fr < vals[bestI]:
			// Expansion.
			for j := range trial2 {
				trial2[j] = centroid[j] + expand*(centroid[j]-verts[worstI][j])
			}
			fe := eval(trial2)
			if fe < fr {
				copy(verts[worstI], trial2)
				vals[worstI] = fe
			} else {
				copy(verts[worstI], trial)
				vals[worstI] = fr
			}
		case fr < vals[order[d-1]]:
			copy(verts[worstI], trial)
			vals[worstI] = fr
		default:
			// Contraction (outside if the reflected point improved on the
			// worst, inside otherwise).
			if fr < vals[worstI] {
				for j := range trial2 {
					trial2[j] = centroid[j] + contract*(trial[j]-centroid[j])
				}
			} else {
				for j := range trial2 {
					trial2[j] = centroid[j] - contract*(centroid[j]-verts[worstI][j])
				}
			}
			fc := eval(trial2)
			if fc < math.Min(fr, vals[worstI]) {
				copy(verts[worstI], trial2)
				vals[worstI] = fc
			} else {
				// Shrink toward the best vertex.
				for _, i := range order[1:] {
					for j := range verts[i] {
						verts[i][j] = verts[bestI][j] + shrink*(verts[i][j]-verts[bestI][j])
					}
					vals[i] = eval(verts[i])
				}
			}
		}
	}

	bestI := 0
	for i := 1; i <= d; i++ {
		if vals[i] < vals[bestI] {
			bestI = i
		}
	}
	return Result{
		X:           cloneVec(verts[bestI]),
		F:           vals[bestI],
		Iterations:  iters,
		Evaluations: evals,
		Converged:   converged,
	}, nil
}
