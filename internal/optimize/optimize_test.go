package optimize

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic builds a separable quadratic with minimum at center.
func quadratic(center []float64) Objective {
	return func(x, grad []float64) float64 {
		v := 0.0
		for i := range x {
			d := x[i] - center[i]
			v += d * d
			if grad != nil {
				grad[i] = 2 * d
			}
		}
		return v
	}
}

// rosenbrock is the classic banana function with minimum (1,1).
func rosenbrock(x, grad []float64) float64 {
	a, b := x[0], x[1]
	v := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	if grad != nil {
		grad[0] = -2*(1-a) - 400*a*(b-a*a)
		grad[1] = 200 * (b - a*a)
	}
	return v
}

// doubleWell has a local minimum near +1.02 and the global minimum near
// -1.18 (f(x) = x^4 - 2x^2 + 0.3x).
func doubleWell(x, grad []float64) float64 {
	v := 0.0
	for i := range x {
		xi := x[i]
		v += xi*xi*xi*xi - 2*xi*xi + 0.3*xi
		if grad != nil {
			grad[i] = 4*xi*xi*xi - 4*xi + 0.3
		}
	}
	return v
}

func TestBoundsValidate(t *testing.T) {
	b := Bounds{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	if err := b.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(3); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	bad := Bounds{Lo: []float64{1}, Hi: []float64{0}}
	if err := bad.Validate(1); err == nil {
		t.Error("inverted bounds should be rejected")
	}
}

func TestBoundsClampAndFinite(t *testing.T) {
	b := Bounds{Lo: []float64{0, -1}, Hi: []float64{1, 1}}
	x := []float64{-5, 0.5}
	b.Clamp(x)
	if x[0] != 0 || x[1] != 0.5 {
		t.Errorf("Clamp = %v", x)
	}
	if !b.Finite() {
		t.Error("finite bounds reported infinite")
	}
	if Unbounded(2).Finite() {
		t.Error("Unbounded reported finite")
	}
}

func TestLBFGSBQuadratic(t *testing.T) {
	center := []float64{3, -2, 0.5}
	res, err := LBFGSB{}.Minimize(quadratic(center), []float64{0, 0, 0}, Unbounded(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-5 {
			t.Errorf("X[%d] = %g, want %g", i, res.X[i], center[i])
		}
	}
	if !res.Converged {
		t.Error("quadratic minimization should converge")
	}
}

func TestLBFGSBRosenbrock(t *testing.T) {
	res, err := LBFGSB{MaxIter: 1000}.Minimize(rosenbrock, []float64{-1.2, 1}, Unbounded(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("Rosenbrock minimum = %v (f=%g), want (1,1)", res.X, res.F)
	}
}

func TestLBFGSBRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (3,-2) lies outside the box [0,1]^2; the
	// constrained minimum is the projection (1,0).
	b := Bounds{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	res, err := LBFGSB{}.Minimize(quadratic([]float64{3, -2}), []float64{0.5, 0.5}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-0) > 1e-6 {
		t.Errorf("constrained minimum = %v, want (1,0)", res.X)
	}
	for i := range res.X {
		if res.X[i] < b.Lo[i]-1e-12 || res.X[i] > b.Hi[i]+1e-12 {
			t.Errorf("iterate escaped the box: %v", res.X)
		}
	}
}

func TestLBFGSBStartOutsideBoxIsClamped(t *testing.T) {
	b := Bounds{Lo: []float64{0}, Hi: []float64{1}}
	res, err := LBFGSB{}.Minimize(quadratic([]float64{0.5}), []float64{25}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-6 {
		t.Errorf("X = %v, want 0.5", res.X)
	}
}

func TestLBFGSBEmptyStart(t *testing.T) {
	if _, err := (LBFGSB{}).Minimize(quadratic(nil), nil, Unbounded(0)); err == nil {
		t.Error("empty start should error")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	center := []float64{-1, 4}
	res, err := NelderMead{MaxIter: 2000}.Minimize(quadratic(center), []float64{0, 0}, Unbounded(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range center {
		if math.Abs(res.X[i]-center[i]) > 1e-3 {
			t.Errorf("X[%d] = %g, want %g", i, res.X[i], center[i])
		}
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	res, err := NelderMead{MaxIter: 5000, Tol: 1e-14}.Minimize(rosenbrock, []float64{-1.2, 1}, Unbounded(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum = %v (f=%g)", res.X, res.F)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	b := Bounds{Lo: []float64{0, 0}, Hi: []float64{1, 1}}
	res, err := NelderMead{}.Minimize(quadratic([]float64{5, 5}), []float64{0.2, 0.2}, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if res.X[i] < -1e-12 || res.X[i] > 1+1e-12 {
			t.Errorf("solution escaped the box: %v", res.X)
		}
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("constrained minimum = %v, want (1,1)", res.X)
	}
}

func TestMLSLFindsGlobalMinimum(t *testing.T) {
	// Start in the basin of the *local* minimum (+1); MLSL must escape to
	// the global one near -1.18.
	b := Bounds{Lo: []float64{-2, -2}, Hi: []float64{2, 2}}
	res, err := MLSL{Rand: rand.New(rand.NewSource(1))}.Minimize(doubleWell, []float64{1, 1}, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if res.X[i] > -1 {
			t.Errorf("X[%d] = %g stayed in the local basin (f=%g)", i, res.X[i], res.F)
		}
	}
}

func TestMLSLRequiresFiniteBounds(t *testing.T) {
	if _, err := (MLSL{}).Minimize(doubleWell, []float64{0}, Unbounded(1)); err == nil {
		t.Error("MLSL over unbounded box should error")
	}
}

func TestMLSLKeepsCallerStart(t *testing.T) {
	// A needle the random sampling is unlikely to hit: minimum in a tiny
	// region around x0. MLSL must still return something at least as good
	// as a local search from x0.
	needle := func(x, grad []float64) float64 {
		v := 0.0
		for i := range x {
			d := x[i] - 0.123456
			v += d * d
			if grad != nil {
				grad[i] = 2 * d
			}
		}
		return v
	}
	b := Bounds{Lo: []float64{-1000}, Hi: []float64{1000}}
	res, err := MLSL{Samples: 4, Rand: rand.New(rand.NewSource(2))}.Minimize(needle, []float64{0.1}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.123456) > 1e-4 {
		t.Errorf("X = %v, want 0.123456", res.X)
	}
}

func TestProjectedGradientNorm(t *testing.T) {
	b := Bounds{Lo: []float64{0}, Hi: []float64{1}}
	// At x=0 with positive gradient pointing out of the box, the projected
	// gradient is zero: the point is first-order optimal.
	if n := projectedGradientNorm([]float64{0}, []float64{5}, b); n != 0 {
		t.Errorf("norm = %g, want 0", n)
	}
	// Interior point: projected gradient equals the gradient (up to the
	// box walls).
	if n := projectedGradientNorm([]float64{0.5}, []float64{0.1}, b); math.Abs(n-0.1) > 1e-15 {
		t.Errorf("norm = %g, want 0.1", n)
	}
}
