package optimize

import (
	"fmt"
	"math"
)

// LBFGSB is a bound-constrained limited-memory BFGS minimizer. It plays the
// role NLopt's L-BFGS-B implementation plays in the paper (§3.4, §5.3):
// local refinement of the bandwidth after the global phase.
//
// The implementation is the projected-gradient variant: search directions
// come from the standard two-loop recursion over recent curvature pairs,
// with components pushing against active bounds zeroed out; steps are
// projected onto the box and accepted under an Armijo condition along the
// projected path.
type LBFGSB struct {
	// Memory is the number of curvature pairs retained (default 8).
	Memory int
	// MaxIter caps the number of outer iterations (default 200).
	MaxIter int
	// GradTol stops when the projected gradient infinity norm falls below
	// it (default 1e-7).
	GradTol float64
	// FTol stops when the relative objective decrease falls below it
	// (default 1e-10).
	FTol float64
}

func (o LBFGSB) memory() int {
	if o.Memory > 0 {
		return o.Memory
	}
	return 8
}

func (o LBFGSB) maxIter() int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	return 200
}

func (o LBFGSB) gradTol() float64 {
	if o.GradTol > 0 {
		return o.GradTol
	}
	return 1e-7
}

func (o LBFGSB) fTol() float64 {
	if o.FTol > 0 {
		return o.FTol
	}
	return 1e-10
}

// Minimize implements Minimizer.
func (o LBFGSB) Minimize(f Objective, x0 []float64, b Bounds) (Result, error) {
	d := len(x0)
	if d == 0 {
		return Result{}, fmt.Errorf("optimize: empty starting point")
	}
	if err := b.Validate(d); err != nil {
		return Result{}, err
	}

	x := cloneVec(x0)
	b.Clamp(x)
	g := make([]float64, d)
	evals := 0
	fx := f(x, g)
	evals++
	if math.IsNaN(fx) {
		return Result{}, fmt.Errorf("optimize: objective is NaN at the starting point")
	}

	type pair struct{ s, y []float64 }
	var hist []pair
	dir := make([]float64, d)
	xNew := make([]float64, d)
	gNew := make([]float64, d)
	alphaBuf := make([]float64, o.memory())

	best := Result{X: cloneVec(x), F: fx}
	converged := false

	for iter := 0; iter < o.maxIter(); iter++ {
		best.Iterations = iter + 1
		if projectedGradientNorm(x, g, b) <= o.gradTol() {
			converged = true
			break
		}

		// Two-loop recursion for dir = -H·g.
		copy(dir, g)
		m := len(hist)
		for i := m - 1; i >= 0; i-- {
			p := hist[i]
			rho := 1 / dot(p.y, p.s)
			alphaBuf[i] = rho * dot(p.s, dir)
			for j := range dir {
				dir[j] -= alphaBuf[i] * p.y[j]
			}
		}
		if m > 0 {
			last := hist[m-1]
			gamma := dot(last.s, last.y) / dot(last.y, last.y)
			for j := range dir {
				dir[j] *= gamma
			}
		}
		for i := 0; i < m; i++ {
			p := hist[i]
			rho := 1 / dot(p.y, p.s)
			beta := rho * dot(p.y, dir)
			for j := range dir {
				dir[j] += (alphaBuf[i] - beta) * p.s[j]
			}
		}
		for j := range dir {
			dir[j] = -dir[j]
		}
		// Zero direction components that push against an active bound.
		for j := range dir {
			if (x[j] <= b.Lo[j] && dir[j] < 0) || (x[j] >= b.Hi[j] && dir[j] > 0) {
				dir[j] = 0
			}
		}
		// Fall back to steepest descent if the direction is not a descent
		// direction (can happen after aggressive bound clipping).
		if dot(g, dir) >= 0 {
			hist = hist[:0]
			for j := range dir {
				dir[j] = -g[j]
				if (x[j] <= b.Lo[j] && dir[j] < 0) || (x[j] >= b.Hi[j] && dir[j] > 0) {
					dir[j] = 0
				}
			}
			if dot(g, dir) >= 0 {
				converged = true // stationary on the active set
				break
			}
		}

		// Backtracking Armijo line search along the projected path.
		const c1 = 1e-4
		alpha := 1.0
		var fNew float64
		accepted := false
		for ls := 0; ls < 40; ls++ {
			for j := range xNew {
				xNew[j] = x[j] + alpha*dir[j]
			}
			b.Clamp(xNew)
			fNew = f(xNew, gNew)
			evals++
			// Directional decrease measured against the actual (projected)
			// displacement.
			desc := 0.0
			for j := range xNew {
				desc += g[j] * (xNew[j] - x[j])
			}
			if !math.IsNaN(fNew) && fNew <= fx+c1*desc && desc < 0 {
				accepted = true
				break
			}
			alpha *= 0.5
		}
		if !accepted {
			break // cannot make progress; report best so far
		}

		// Curvature update.
		s := make([]float64, d)
		y := make([]float64, d)
		for j := range s {
			s[j] = xNew[j] - x[j]
			y[j] = gNew[j] - g[j]
		}
		if sy := dot(s, y); sy > 1e-12*math.Sqrt(dot(s, s)*dot(y, y)) {
			hist = append(hist, pair{s, y})
			if len(hist) > o.memory() {
				hist = hist[1:]
			}
		}

		prevF := fx
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		if fx < best.F {
			best.F = fx
			copy(best.X, x)
		}
		if math.Abs(prevF-fx) <= o.fTol()*(1+math.Abs(fx)) {
			converged = true
			break
		}
	}

	best.Evaluations = evals
	best.Converged = converged
	if fx < best.F {
		best.F = fx
		copy(best.X, x)
	}
	return best, nil
}
