package optimize

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MLSL is a multi-level single-linkage style global minimizer [24]: it
// samples candidate starting points in the box, discards candidates that
// cluster around already-explored basins (single-linkage rule), and runs a
// local minimizer from the survivors. This is the coarse global phase the
// paper runs before L-BFGS-B refinement (§3.4, §5.3).
type MLSL struct {
	// Samples is the number of random candidates drawn (default 64).
	Samples int
	// MaxLocal caps the number of local searches launched (default 5).
	MaxLocal int
	// ClusterRadius is the fraction of the box diagonal within which a
	// candidate is considered part of an already-explored basin
	// (default 0.1).
	ClusterRadius float64
	// Local is the local minimizer (default LBFGSB{}).
	Local Minimizer
	// Rand supplies randomness; nil means a fixed-seed source, keeping
	// the optimizer deterministic by default.
	Rand *rand.Rand
}

func (o MLSL) samples() int {
	if o.Samples > 0 {
		return o.Samples
	}
	return 64
}

func (o MLSL) maxLocal() int {
	if o.MaxLocal > 0 {
		return o.MaxLocal
	}
	return 5
}

func (o MLSL) clusterRadius() float64 {
	if o.ClusterRadius > 0 {
		return o.ClusterRadius
	}
	return 0.1
}

func (o MLSL) local() Minimizer {
	if o.Local != nil {
		return o.Local
	}
	return LBFGSB{}
}

// Minimize searches the box globally. Unlike local methods it needs finite
// bounds to sample from; x0 is included as one of the candidates so the
// caller's best known point is never lost.
func (o MLSL) Minimize(f Objective, x0 []float64, b Bounds) (Result, error) {
	d := len(x0)
	if d == 0 {
		return Result{}, fmt.Errorf("optimize: empty starting point")
	}
	if err := b.Validate(d); err != nil {
		return Result{}, err
	}
	if !b.Finite() {
		return Result{}, fmt.Errorf("optimize: MLSL requires finite bounds to sample candidates")
	}
	rng := o.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5eed))
	}

	diag := 0.0
	for i := 0; i < d; i++ {
		w := b.Hi[i] - b.Lo[i]
		diag += w * w
	}
	diag = math.Sqrt(diag)
	radius := o.clusterRadius() * diag

	type cand struct {
		x []float64
		f float64
	}
	cands := make([]cand, 0, o.samples()+1)
	evals := 0
	start := cloneVec(x0)
	b.Clamp(start)
	cands = append(cands, cand{start, f(start, nil)})
	evals++
	for i := 0; i < o.samples(); i++ {
		x := make([]float64, d)
		for j := 0; j < d; j++ {
			x[j] = b.Lo[j] + rng.Float64()*(b.Hi[j]-b.Lo[j])
		}
		cands = append(cands, cand{x, f(x, nil)})
		evals++
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].f < cands[j].f })

	var explored [][]float64
	best := Result{X: cloneVec(cands[0].x), F: cands[0].f}
	locals := 0
	for _, c := range cands {
		if locals >= o.maxLocal() {
			break
		}
		if math.IsInf(c.f, 1) || math.IsNaN(c.f) {
			continue
		}
		// Single-linkage rule: skip candidates near an explored basin.
		near := false
		for _, e := range explored {
			if euclid(c.x, e) < radius {
				near = true
				break
			}
		}
		if near {
			continue
		}
		res, err := o.local().Minimize(f, c.x, b)
		if err != nil {
			continue
		}
		locals++
		evals += res.Evaluations
		explored = append(explored, cloneVec(res.X))
		if res.F < best.F {
			best.F = res.F
			best.X = cloneVec(res.X)
		}
	}
	best.Iterations = locals
	best.Evaluations = evals
	best.Converged = locals > 0
	return best, nil
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
