// Package optimize provides the numerical optimization substrate the
// bandwidth selection methods need (paper §3.4): a bound-constrained
// limited-memory quasi-Newton method filling the role of L-BFGS-B [8], a
// derivative-free Nelder-Mead simplex, and an MLSL-style multistart global
// optimizer [24] that combines random sampling with cluster filtering and
// local refinement.
//
// All methods minimize an Objective over a box. The implementations are
// from scratch on the standard library, as the substitution notes in
// DESIGN.md describe.
package optimize

import (
	"fmt"
	"math"
)

// Objective evaluates the target function at x and, when grad is non-nil,
// writes the gradient into grad. Implementations must not retain x or grad.
type Objective func(x, grad []float64) float64

// Bounds is a box constraint lo[i] <= x[i] <= hi[i]. Entries may be
// infinite for unconstrained dimensions.
type Bounds struct {
	Lo []float64
	Hi []float64
}

// Validate reports an error if the bounds are malformed for dimension d.
func (b Bounds) Validate(d int) error {
	if len(b.Lo) != d || len(b.Hi) != d {
		return fmt.Errorf("optimize: bounds have dims (%d,%d), want %d", len(b.Lo), len(b.Hi), d)
	}
	for i := range b.Lo {
		if b.Hi[i] < b.Lo[i] {
			return fmt.Errorf("optimize: inverted bounds in dimension %d", i)
		}
	}
	return nil
}

// Clamp projects x onto the box in place.
func (b Bounds) Clamp(x []float64) {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
}

// Finite reports whether every bound is finite, a requirement for random
// sampling in the global phase.
func (b Bounds) Finite() bool {
	for i := range b.Lo {
		if math.IsInf(b.Lo[i], 0) || math.IsInf(b.Hi[i], 0) {
			return false
		}
	}
	return true
}

// Unbounded returns bounds of (-inf, +inf) in every dimension.
func Unbounded(d int) Bounds {
	b := Bounds{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := 0; i < d; i++ {
		b.Lo[i] = math.Inf(-1)
		b.Hi[i] = math.Inf(1)
	}
	return b
}

// Result reports the outcome of a minimization.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of outer iterations performed.
	Iterations int
	// Evaluations is the number of objective evaluations.
	Evaluations int
	// Converged reports whether a tolerance-based stopping rule fired
	// (as opposed to exhausting the iteration budget).
	Converged bool
}

// Minimizer is a local optimization algorithm over a box.
type Minimizer interface {
	Minimize(f Objective, x0 []float64, b Bounds) (Result, error)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func infNorm(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

func cloneVec(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// projectedGradientNorm measures first-order optimality on a box:
// the infinity norm of x - P(x - g).
func projectedGradientNorm(x, g []float64, b Bounds) float64 {
	m := 0.0
	for i := range x {
		xi := x[i] - g[i]
		if xi < b.Lo[i] {
			xi = b.Lo[i]
		}
		if xi > b.Hi[i] {
			xi = b.Hi[i]
		}
		if d := math.Abs(x[i] - xi); d > m {
			m = d
		}
	}
	return m
}
