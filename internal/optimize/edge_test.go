package optimize

import (
	"math"
	"testing"
)

// The bandwidth objectives return +Inf outside their domain; the local
// optimizer must treat such regions as walls rather than diverging.
func TestLBFGSBHandlesInfiniteRegions(t *testing.T) {
	f := func(x, grad []float64) float64 {
		if x[0] <= 0 {
			if grad != nil {
				grad[0] = 0
			}
			return math.Inf(1)
		}
		d := x[0] - 2
		if grad != nil {
			grad[0] = 2 * d
		}
		return d * d
	}
	b := Bounds{Lo: []float64{-10}, Hi: []float64{10}}
	res, err := LBFGSB{}.Minimize(f, []float64{5}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-5 {
		t.Errorf("X = %v, want 2", res.X)
	}
}

func TestNelderMeadHandlesInfiniteRegions(t *testing.T) {
	f := func(x, _ []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		d := x[0] - 2
		return d * d
	}
	b := Bounds{Lo: []float64{-10}, Hi: []float64{10}}
	res, err := NelderMead{MaxIter: 500}.Minimize(f, []float64{5}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-3 {
		t.Errorf("X = %v, want 2", res.X)
	}
}

// A NaN at the starting point must error rather than loop.
func TestLBFGSBNaNStart(t *testing.T) {
	f := func(x, grad []float64) float64 {
		if grad != nil {
			grad[0] = 0
		}
		return math.NaN()
	}
	if _, err := (LBFGSB{}).Minimize(f, []float64{1}, Unbounded(1)); err == nil {
		t.Error("NaN objective at start should error")
	}
}

// Fixed degenerate box: lo == hi pins the variable.
func TestDegenerateBox(t *testing.T) {
	f := quadratic([]float64{5, 5})
	b := Bounds{Lo: []float64{1, -10}, Hi: []float64{1, 10}}
	res, err := LBFGSB{}.Minimize(f, []float64{1, 0}, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 1 {
		t.Errorf("pinned variable moved: %v", res.X)
	}
	if math.Abs(res.X[1]-5) > 1e-5 {
		t.Errorf("free variable = %g, want 5", res.X[1])
	}
}

// Evaluations must be counted (budget accounting for callers).
func TestEvaluationCounting(t *testing.T) {
	count := 0
	f := func(x, grad []float64) float64 {
		count++
		return quadratic([]float64{1})(x, grad)
	}
	res, err := LBFGSB{}.Minimize(f, []float64{0}, Unbounded(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != count {
		t.Errorf("reported %d evaluations, actual %d", res.Evaluations, count)
	}
}
