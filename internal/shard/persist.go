package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"kdesel/internal/checkpoint"
	"kdesel/internal/kde"
	"kdesel/internal/learner"
	"kdesel/internal/mathx"
	"kdesel/internal/sample"
	"kdesel/internal/table"
)

// groupState is the gob payload of checkpoint frame 0: everything shared
// across shards — learned bandwidth, learner accumulators, karma scores,
// RNG stream position, pinned quantization constants — so a restored
// group continues bit-identically from the checkpoint.
type groupState struct {
	K      int
	D      int
	STotal int
	Seed   int64
	H      []float64

	Draws    uint64 // counted RNG stream position
	ResSeen  int    // reservoir tuples-seen counter
	Learner  learner.State
	Karma    []float64
	Analyzes int

	PinScale []float32
	PinOff   []float32

	// IngestSeq is the change-feed cursor (see Group.IngestCursor). Gob
	// omits zero values, so pre-ingestion frames restore with cursor 0.
	IngestSeq uint64
}

// shardFrame is the gob payload of frames 1..K: one shard's row-major
// sample. Empty shards write an empty frame, keeping frame index == shard
// index + 1.
type shardFrame struct {
	Data []float64
}

// Checkpoint writes the group atomically as one multi-frame file: frame 0
// carries the shared state, frames 1..K one sample per shard, installed
// all-or-nothing via temp+sync+rename (checkpoint.WriteFileFrames). A
// crash mid-write never tears the group across shards.
func (g *Group) Checkpoint(path string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	st := groupState{
		K:         g.k,
		D:         g.d,
		STotal:    g.sTotal,
		Seed:      g.cfg.Seed,
		H:         append([]float64(nil), g.h...),
		Draws:     g.src.Draws(),
		Learner:   g.learn.State(),
		Karma:     g.karma.Scores(),
		Analyzes:  g.analyzes,
		PinScale:  g.pinScale,
		PinOff:    g.pinOff,
		IngestSeq: g.ingestSeq,
	}
	if g.res != nil {
		st.ResSeen = g.res.Seen()
	}
	frames := make([][]byte, 0, g.k+1)
	f0, err := checkpoint.MarshalMeta(st, uint32(g.prec))
	if err != nil {
		return err
	}
	frames = append(frames, f0)
	for _, sh := range g.shards {
		var fr shardFrame
		if sh.est != nil {
			sh.mu.Lock()
			fr.Data = append([]float64(nil), sh.est.SampleFlat()...)
			sh.mu.Unlock()
		}
		b, err := checkpoint.Marshal(fr)
		if err != nil {
			return err
		}
		frames = append(frames, b)
	}
	return checkpoint.WriteFileFrames(path, frames, g.faults)
}

// Restore rebuilds a group from a Checkpoint file against tab. Runtime
// fields of cfg (Workers, Metrics, Faults, Loss, Learner, Karma) apply to
// the restored group; the model state — shard count, sample, bandwidth,
// learner and karma state, RNG position, pinned quantization constants,
// serving precision — comes from the file. The restored group's estimates
// and its response to further feedback are bit-identical to the group
// that took the checkpoint.
func Restore(path string, tab *table.Table, cfg Config) (*Group, error) {
	if tab == nil {
		return nil, errors.New("shard: nil table")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	frames, err := checkpoint.SplitFrames(b)
	if err != nil {
		return nil, err
	}
	var st groupState
	meta, err := checkpoint.UnmarshalMeta(frames[0], &st)
	if err != nil {
		return nil, err
	}
	if st.K < 1 || st.D != tab.Dims() || len(frames) != st.K+1 {
		return nil, fmt.Errorf("%w: group frame (k=%d, d=%d, frames=%d) inconsistent with table (d=%d)",
			checkpoint.ErrCorrupt, st.K, st.D, len(frames), tab.Dims())
	}
	prec := mathx.Precision(meta & 0xff)

	g := &Group{
		cfg:       cfg,
		tab:       tab,
		d:         st.D,
		k:         st.K,
		lf:        cfg.loss(),
		pool:      cfg.pool(),
		faults:    cfg.Faults,
		sTotal:    st.STotal,
		h:         append([]float64(nil), st.H...),
		prec:      prec,
		pinScale:  st.PinScale,
		pinOff:    st.PinOff,
		analyzes:  st.Analyzes,
		ingestSeq: st.IngestSeq,
	}
	g.cfg.Seed = st.Seed
	g.shards = make([]*shardState, st.K)
	total := 0
	for i := range g.shards {
		g.shards[i] = &shardState{}
		var fr shardFrame
		if err := checkpoint.Unmarshal(frames[i+1], &fr); err != nil {
			return nil, fmt.Errorf("shard %d frame: %w", i, err)
		}
		if len(fr.Data) == 0 {
			continue
		}
		est, err := kde.New(st.D, nil)
		if err != nil {
			return nil, err
		}
		est.SetPool(g.pool)
		if err := est.SetSampleFlat(fr.Data); err != nil {
			return nil, fmt.Errorf("shard %d sample: %w", i, err)
		}
		if err := est.PinQuantConstants(st.PinScale, st.PinOff); err != nil {
			return nil, err
		}
		if err := est.SetBandwidth(g.h); err != nil {
			return nil, err
		}
		if prec != mathx.Float64 {
			est.SetPrecision(prec)
		}
		g.shards[i].est = est
		total += len(fr.Data) / st.D
	}
	if total != st.STotal {
		return nil, fmt.Errorf("%w: shard frames hold %d points, group frame says %d",
			checkpoint.ErrCorrupt, total, st.STotal)
	}

	src := newCountingSource(st.Seed + 1)
	src.FastForward(st.Draws)
	g.src = src
	g.rng = rand.New(src)
	if g.learn, err = learner.NewRMSprop(st.D, cfg.Learner); err != nil {
		return nil, err
	}
	if err := g.learn.Restore(st.Learner); err != nil {
		return nil, err
	}
	kcfg := cfg.Karma
	if kcfg.Loss == nil {
		kcfg.Loss = g.lf
	}
	if g.karma, err = sample.NewKarma(st.STotal, kcfg); err != nil {
		return nil, err
	}
	if err := g.karma.RestoreScores(st.Karma); err != nil {
		return nil, err
	}
	if g.res, err = sample.NewReservoir(st.STotal, st.ResSeen, g.rng); err != nil {
		return nil, err
	}
	tab.Subscribe(g)
	g.instrument(cfg.Metrics)
	g.mu.Lock()
	g.publishLocked()
	g.mu.Unlock()
	return g, nil
}
