package shard

import "math/rand"

// countingSource wraps a math/rand source and counts how many times its
// state has advanced, exactly like the serving core's counted source
// (internal/core/rng.go): the draw count is persisted in the group
// checkpoint frame so a restored group fast-forwards a freshly seeded
// source to the same stream position, making every post-restore random
// decision (karma replacement rows, reservoir accepts) bit-identical to
// the group that took the checkpoint.
type countingSource struct {
	src   rand.Source
	src64 rand.Source64 // non-nil when src natively produces 64-bit values
	n     uint64
}

func newCountingSource(seed int64) *countingSource {
	s := rand.NewSource(seed)
	s64, _ := s.(rand.Source64)
	return &countingSource{src: s, src64: s64}
}

// Int63 implements rand.Source. One call advances the state once.
func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64, composing two Int63 draws exactly like
// rand.Rand does when the source lacks native 64-bit output, so the stream
// matches rand.New(rand.NewSource(seed)) bit for bit either way.
func (c *countingSource) Uint64() uint64 {
	if c.src64 != nil {
		c.n++
		return c.src64.Uint64()
	}
	c.n += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

// Seed implements rand.Source and resets the draw count.
func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns how many times the underlying state has advanced.
func (c *countingSource) Draws() uint64 { return c.n }

// FastForward advances a freshly seeded source n state steps, reproducing
// the stream position recorded by Draws.
func (c *countingSource) FastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Int63()
	}
	c.n = n
}
