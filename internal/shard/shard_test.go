package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"kdesel/internal/core"
	"kdesel/internal/fault"
	"kdesel/internal/kde"
	"kdesel/internal/mathx"
	"kdesel/internal/metrics"
	"kdesel/internal/parallel"
	"kdesel/internal/query"
	"kdesel/internal/table"
)

// testTable builds a deterministic n-row, d-dim table.
func testTable(t *testing.T, n, d int, seed int64) *table.Table {
	t.Helper()
	tab, err := table.New(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.NormFloat64()*float64(j+1) + 0.3*float64(j)
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func testQueries(n, d int, seed int64) []query.Range {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]query.Range, n)
	for i := range qs {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := range lo {
			a := rng.NormFloat64() * float64(j+1) * 2
			b := a + math.Abs(rng.NormFloat64())*float64(j+1)
			lo[j], hi[j] = a, b
		}
		qs[i] = query.NewRange(lo, hi)
	}
	return qs
}

// refEstimator builds the unsharded reference: a raw kde.Estimator over
// the exact global sample a Group draws (same counted stream), with the
// same pinned quantization constants, Scott bandwidth, and precision.
func refEstimator(t *testing.T, tab *table.Table, cfg Config) *kde.Estimator {
	t.Helper()
	d := tab.Dims()
	rng := rand.New(newCountingSource(cfg.Seed + 1))
	s := cfg.sampleSize()
	if s > tab.Len() {
		s = tab.Len()
	}
	flat, err := tab.SampleFlat(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := kde.New(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	est.SetPool(parallel.PoolFor(cfg.Workers))
	if err := est.SetSampleFlat(flat); err != nil {
		t.Fatal(err)
	}
	scale, off := kde.QuantConstants(flat, d)
	if err := est.PinQuantConstants(scale, off); err != nil {
		t.Fatal(err)
	}
	if err := est.SetBandwidth(kde.ScottBandwidth(flat, d)); err != nil {
		t.Fatal(err)
	}
	if cfg.Precision != mathx.Float64 {
		est.SetPrecision(cfg.Precision)
	}
	return est
}

// TestShardBitIdentity is the headline determinism contract: for every
// shard count, worker count, serving precision, and erf mode, the sharded
// gather reproduces the unsharded estimator bit for bit (Float64bits).
func TestShardBitIdentity(t *testing.T) {
	const d, rows, sampleSize = 3, 3000, 1200
	tab := testTable(t, rows, d, 11)
	qs := testQueries(40, d, 23)
	for _, prec := range []mathx.Precision{mathx.Float64, mathx.Float32, mathx.Quantized} {
		for _, fast := range []bool{false, true} {
			mode := mathx.Exact
			if fast {
				mode = mathx.Fast
			}
			prev := mathx.CurrentMode()
			mathx.SetMode(mode)
			ref := refEstimator(t, tab, Config{SampleSize: sampleSize, Seed: 7, Precision: prec})
			want := make([]float64, len(qs))
			if err := ref.SelectivityBatch(qs, want); err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4, 7} {
				for _, workers := range []int{0, 3, 8} {
					g, err := Build(tab, Config{
						Shards: k, SampleSize: sampleSize, Seed: 7,
						Precision: prec, Workers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := make([]float64, len(qs))
					if err := g.EstimateBatch(qs, got); err != nil {
						t.Fatal(err)
					}
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("prec=%v fast=%v K=%d workers=%d query %d: got %x (%g), want %x (%g)",
								prec, fast, k, workers, i,
								math.Float64bits(got[i]), got[i],
								math.Float64bits(want[i]), want[i])
						}
					}
					// Single-query path agrees with the batch path.
					est, err := g.Estimate(qs[0])
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(est) != math.Float64bits(want[0]) {
						t.Fatalf("prec=%v K=%d: single-query estimate %g != batch %g", prec, k, est, want[0])
					}
					g.Close()
				}
			}
			mathx.SetMode(prev)
		}
	}
}

// TestShardFeedbackInvariance: the learned trajectory — bandwidth steps,
// karma replacements, reservoir accepts — is invariant in K: after an
// identical feedback and insert sequence, groups of every shard count
// serve bit-identical estimates.
func TestShardFeedbackInvariance(t *testing.T) {
	const d, rows, sampleSize = 2, 2500, 1000
	tab1 := testTable(t, rows, d, 31)
	qs := testQueries(25, d, 41)
	fbq := testQueries(60, d, 43)

	ref := make([]float64, len(qs))
	for ki, k := range []int{1, 2, 4, 7} {
		// A fresh table per K: OnInsert mutates listener state.
		tab := tab1
		if ki > 0 {
			tab = testTable(t, rows, d, 31)
		}
		g, err := Build(tab, Config{Shards: k, SampleSize: sampleSize, Seed: 5, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range fbq {
			actual := 0.0
			if i%3 != 0 { // every third query reports an empty region
				actual, err = tab.Selectivity(q)
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := g.Feedback(q, actual); err != nil {
				t.Fatalf("K=%d feedback %d: %v", k, i, err)
			}
			if i%10 == 0 { // interleave inserts to drive the reservoir
				if err := tab.Insert([]float64{float64(i), -float64(i)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := make([]float64, len(qs))
		if err := g.EstimateBatch(qs, got); err != nil {
			t.Fatal(err)
		}
		if ki == 0 {
			copy(ref, got)
		} else {
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("K=%d diverged from K=1 after feedback at query %d: %g vs %g", k, i, got[i], ref[i])
				}
			}
		}
		g.Close()
	}
}

// TestShardCheckpointRoundTrip: a restored group serves bit-identical
// estimates AND continues bit-identically under further feedback — the
// checkpoint captures the full shared state (learner, karma, RNG stream).
func TestShardCheckpointRoundTrip(t *testing.T) {
	const d, rows, sampleSize = 2, 2000, 900
	for _, prec := range []mathx.Precision{mathx.Float64, mathx.Float32, mathx.Quantized} {
		tab := testTable(t, rows, d, 17)
		qs := testQueries(20, d, 19)
		fbq := testQueries(30, d, 29)
		g, err := Build(tab, Config{Shards: 4, SampleSize: sampleSize, Seed: 3, Workers: 2, Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range fbq[:15] {
			actual, _ := tab.Selectivity(q)
			if err := g.Feedback(q, actual); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(t.TempDir(), "group.ckpt")
		if err := g.Checkpoint(path); err != nil {
			t.Fatal(err)
		}
		tab2 := testTable(t, rows, d, 17)
		r, err := Restore(path, tab2, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.Shards() != 4 || r.Size() != g.Size() || r.Precision() != prec {
			t.Fatalf("restored shape: shards=%d size=%d prec=%v, want 4/%d/%v", r.Shards(), r.Size(), r.Precision(), g.Size(), prec)
		}
		check := func(stage string) {
			t.Helper()
			a := make([]float64, len(qs))
			b := make([]float64, len(qs))
			if err := g.EstimateBatch(qs, a); err != nil {
				t.Fatal(err)
			}
			if err := r.EstimateBatch(qs, b); err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("prec=%v %s: restored group diverged at query %d: %g vs %g", prec, stage, i, b[i], a[i])
				}
			}
		}
		check("immediately after restore")
		// Continuation: identical further feedback must keep them in
		// lockstep (same karma decisions, same replacement rows drawn
		// from the fast-forwarded RNG, same learner steps).
		for _, q := range fbq[15:] {
			actual, _ := tab.Selectivity(q)
			if err := g.Feedback(q, actual); err != nil {
				t.Fatal(err)
			}
			if err := r.Feedback(q, actual); err != nil {
				t.Fatal(err)
			}
		}
		check("after post-restore feedback")
		g.Close()
		r.Close()
	}
}

// TestShardEmptyShards: more shards than global chunks (K=7 over a
// 2-chunk sample) leaves five shards empty; the group still serves and
// still matches the unsharded reference bit for bit.
func TestShardEmptyShards(t *testing.T) {
	const d, rows, sampleSize = 2, 800, 512 // 512 rows → 2 chunks
	tab := testTable(t, rows, d, 53)
	qs := testQueries(10, d, 59)
	ref := refEstimator(t, tab, Config{SampleSize: sampleSize, Seed: 9})
	want := make([]float64, len(qs))
	if err := ref.SelectivityBatch(qs, want); err != nil {
		t.Fatal(err)
	}
	g, err := Build(tab, Config{Shards: 7, SampleSize: sampleSize, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sizes := g.ShardSizes()
	empty := 0
	for _, s := range sizes {
		if s == 0 {
			empty++
		}
	}
	if empty != 5 {
		t.Fatalf("want 5 empty shards over 2 chunks, got sizes %v", sizes)
	}
	got := make([]float64, len(qs))
	if err := g.EstimateBatch(qs, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d: got %g, want %g", i, got[i], want[i])
		}
	}
	// Feedback routes around the empty shards too.
	if err := g.Feedback(qs[0], 0.25); err != nil {
		t.Fatal(err)
	}
}

// TestShardPartialFailure: a shard lost during the scatter degrades the
// gather (renormalized over survivors, Degraded health, per-request
// flag) instead of failing it; losing every shard is an error.
func TestShardPartialFailure(t *testing.T) {
	const d, rows, sampleSize = 2, 2000, 1024 // 4 chunks → K=4, one chunk each
	tab := testTable(t, rows, d, 61)
	q := testQueries(1, d, 67)[0]

	// Occurrences count per-shard scatter attempts in shard-index order:
	// the 4 shards of the first gather are occurrences 1..4.
	inj := fault.New(1, fault.Schedule{fault.ShardFail: {At: []int{2}}})
	g, err := Build(tab, Config{Shards: 4, SampleSize: sampleSize, Seed: 13, Workers: 2, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	est, degraded, err := g.EstimateDetail(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("gather with a failed shard did not report degraded")
	}
	if g.Health() != core.Degraded {
		t.Fatalf("health = %v, want Degraded", g.Health())
	}
	if math.IsNaN(est) || est < 0 || est > 1.0001 {
		t.Fatalf("degraded estimate out of range: %g", est)
	}
	// The renormalized estimate equals the mean over the surviving
	// shards' chunks: recompute it from the healthy group.
	g2, err := Build(tab, Config{Shards: 4, SampleSize: sampleSize, Seed: 13, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	est2, degraded2, err := g2.EstimateDetail(context.Background(), q)
	if err != nil || degraded2 {
		t.Fatalf("healthy group: est=%g degraded=%v err=%v", est2, degraded2, err)
	}
	if math.Abs(est-est2) > 0.2 {
		t.Fatalf("degraded estimate %g implausibly far from healthy %g", est, est2)
	}

	// All shards down: the gather must fail, not serve garbage.
	injAll := fault.New(1, fault.Schedule{fault.ShardFail: {At: []int{1, 2, 3, 4}}})
	g3, err := Build(tab, Config{Shards: 4, SampleSize: sampleSize, Seed: 13, Faults: injAll})
	if err != nil {
		t.Fatal(err)
	}
	defer g3.Close()
	if _, _, err := g3.EstimateDetail(context.Background(), q); !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("all-shards-failed gather returned %v, want ErrAllShardsFailed", err)
	}
}

// TestShardContextCancel: an expired request context aborts the gather
// with the context's error.
func TestShardContextCancel(t *testing.T) {
	tab := testTable(t, 1500, 2, 71)
	g, err := Build(tab, Config{Shards: 4, SampleSize: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.EstimateContext(ctx, testQueries(1, 2, 73)[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled estimate returned %v, want context.Canceled", err)
	}
}

// TestShardInvalidQuery: validation failures map to core.ErrInvalidQuery
// (the HTTP layer's 400 taxonomy) for dimension mismatch, NaN, and
// inverted bounds.
func TestShardInvalidQuery(t *testing.T) {
	tab := testTable(t, 1000, 2, 79)
	g, err := Build(tab, Config{Shards: 2, SampleSize: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	bad := []query.Range{
		query.NewRange([]float64{0}, []float64{1}),                 // wrong dims
		query.NewRange([]float64{math.NaN(), 0}, []float64{1, 1}),  // NaN
		query.NewRange([]float64{0, 0}, []float64{math.Inf(1), 1}), // Inf
		query.NewRange([]float64{1, 0}, []float64{0, 1}),           // inverted
	}
	for i, q := range bad {
		if _, err := g.Estimate(q); !errors.Is(err, core.ErrInvalidQuery) {
			t.Fatalf("bad query %d returned %v, want core.ErrInvalidQuery", i, err)
		}
	}
	if err := g.Feedback(testQueries(1, 2, 1)[0], math.NaN()); !errors.Is(err, core.ErrInvalidFeedback) {
		t.Fatalf("NaN feedback returned %v, want core.ErrInvalidFeedback", err)
	}
}

// TestShardAnalyzeIsolation: while ANALYZE optimizes over one shard's
// sample, estimates keep completing (the optimization holds no lock the
// estimate path touches) and the bandwidth is installed group-wide
// afterwards.
func TestShardAnalyzeIsolation(t *testing.T) {
	const d = 2
	tab := testTable(t, 3000, d, 83)
	g, err := Build(tab, Config{Shards: 4, SampleSize: 2048, Seed: 21, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	h0 := g.Bandwidth()
	fbq := testQueries(40, d, 89)
	fbs := make([]query.Feedback, len(fbq))
	for i, q := range fbq {
		actual, _ := tab.Selectivity(q)
		fbs[i] = query.Feedback{Query: q, Actual: actual}
	}
	done := make(chan error, 1)
	go func() { done <- g.AnalyzeShard(1, fbs) }()
	qs := testQueries(5, d, 97)
	ests := make([]float64, len(qs))
	served := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if served == 0 {
				t.Fatal("no estimates served during analyze")
			}
			h1 := g.Bandwidth()
			changed := false
			for j := range h1 {
				if h1[j] != h0[j] {
					changed = true
				}
			}
			if !changed {
				t.Fatal("analyze did not install a new bandwidth")
			}
			return
		default:
			if err := g.EstimateBatch(qs, ests); err != nil {
				t.Fatalf("estimate during analyze: %v", err)
			}
			served++
		}
	}
}

// TestShardMetrics: per-shard namespaces land under shard<i>.* and the
// group counters move.
func TestShardMetrics(t *testing.T) {
	reg := metrics.New()
	tab := testTable(t, 1500, 2, 101)
	g, err := Build(tab, Config{Shards: 2, SampleSize: 600, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Estimate(testQueries(1, 2, 103)[0]); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.gathers"] != 1 {
		t.Fatalf("shard.gathers = %v, want 1", snap.Counters["shard.gathers"])
	}
	if snap.Gauges["shard0.size"]+snap.Gauges["shard1.size"] != 600 {
		t.Fatalf("per-shard sizes %v + %v do not sum to 600", snap.Gauges["shard0.size"], snap.Gauges["shard1.size"])
	}
	if snap.Gauges["shard.shards"] != 2 {
		t.Fatalf("shard.shards = %v, want 2", snap.Gauges["shard.shards"])
	}
}
