// Package shard implements sharded scale-out serving for the KDE
// selectivity estimator: the reservoir sample is partitioned across K
// shard estimators, estimate batches are scattered across the shards and
// the per-shard partial sums are gathered back in a deterministic order,
// so the K-shard result is bit-identical to the single-shard path for any
// K and any worker count.
//
// # Partitioning rule
//
// The global sample of size s is laid out on the fixed 256-row chunk grid
// of internal/parallel (the grid that defines the reduction tree of every
// KDE operation). Global chunk c is owned by shard c mod K and becomes
// that shard's local chunk c div K, so shard k holds the global chunks
// {k, k+K, k+2K, ...} in ascending order. Because only the globally last
// chunk can be partial and it lands as the last local chunk of its owner,
// every shard's local chunk grid is an exact sub-grid of the global one:
// a shard's local chunk partials ARE the corresponding global chunk
// partials, bit for bit. A global sample index gi therefore lives on
// shard (gi/256) mod K at local index ((gi/256)/K)*256 + gi%256.
//
// # Scatter/gather semantics
//
// EstimateBatch scatters the query batch to every shard through the
// shared parallel.Pool (one task per shard); each shard evaluates its
// frozen view's per-chunk partial mass sums (kde.SelectivityBatchPartials)
// without taking any lock. The gather then walks the GLOBAL chunk grid in
// ascending order, picking each chunk's partial from its owner shard, and
// divides by the total sample size — exactly the float-addition sequence
// of the single-estimator reduction, which is what makes the result
// bit-identical at every K.
//
// # Per-shard lifecycle
//
// Every shard owns its writer lock; the group publishes one immutable
// view set (all K shard views plus the uniform bandwidth) through a
// single atomic pointer, so estimates never block on any lock. ANALYZE
// re-optimizes the bandwidth over ONE shard's sample copy — the copy is
// taken under that shard's lock alone, and the optimization runs with no
// lock held — so karma/reservoir maintenance and ANALYZE on one shard
// never stall estimates, which keep serving the previous view set until
// the new bandwidth is installed group-wide. Feedback routes sample
// maintenance by ownership (karma scores are global; replacements take
// only the owning shard's lock) and merges bandwidth gradients in the
// same deterministic global-chunk-order reduction before the learner
// step, so the learned trajectory is invariant in K.
//
// # Partial failure
//
// A shard that fails during the scatter (fault.ShardFail, or a future
// remote-shard transport) degrades the gather instead of failing it: the
// estimate renormalizes over the surviving shards' sample mass, the
// group's health drops to core.Degraded, and the per-request degraded
// flag propagates to the serving layer. Only the loss of every shard is
// an error.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"kdesel/internal/bandwidth"
	"kdesel/internal/core"
	"kdesel/internal/fault"
	"kdesel/internal/kde"
	"kdesel/internal/learner"
	"kdesel/internal/loss"
	"kdesel/internal/mathx"
	"kdesel/internal/metrics"
	"kdesel/internal/parallel"
	"kdesel/internal/query"
	"kdesel/internal/sample"
	"kdesel/internal/table"
)

// ErrClosed reports an operation on a closed group.
var ErrClosed = errors.New("shard: group closed")

// ErrAllShardsFailed reports a gather in which no shard survived.
var ErrAllShardsFailed = errors.New("shard: all shards failed")

// Config configures Build. The zero value is usable: one shard, the
// default sample size, Gaussian kernel, quadratic loss.
type Config struct {
	// Shards is K, the number of sample partitions; 0 or 1 mean a single
	// shard (which serves bit-identically to an unsharded estimator —
	// that is the whole point).
	Shards int
	// SampleSize is the TOTAL sample size across all shards (default
	// 1024, matching core.Config).
	SampleSize int
	// Seed derives the sampling and maintenance RNG stream; identical
	// seeds give identical models, any K.
	Seed int64
	// Loss is the feedback loss (default quadratic).
	Loss loss.Function
	// Learner configures the RMSprop bandwidth learner.
	Learner learner.Config
	// Karma configures the sample-maintenance scoring.
	Karma sample.KarmaConfig
	// Precision selects the serving tier of every shard (default
	// Float64).
	Precision mathx.Precision
	// Workers sets the host parallelism of the pool used for both the
	// cross-shard scatter and each shard's own chunk loop: 0 or 1 serial,
	// n > 1 that many workers, negative NumCPU. Results are bit-identical
	// for every setting.
	Workers int
	// Pool, when non-nil, is the shared worker pool to run on instead of
	// one derived from Workers — the model registry passes its
	// process-wide pool here.
	Pool *parallel.Pool
	// Metrics, when non-nil, receives group and per-shard telemetry. Pass
	// a prefixed view (e.g. model.<key>.) to namespace it; the group adds
	// shard.* and shard<i>.* below it.
	Metrics *metrics.Registry
	// Faults, when non-nil, injects deterministic failures (ShardFail at
	// the scatter, CheckpointCorrupt at checkpoint writes).
	Faults *fault.Injector
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c Config) sampleSize() int {
	if c.SampleSize > 0 {
		return c.SampleSize
	}
	return 1024
}

func (c Config) loss() loss.Function {
	if c.Loss != nil {
		return c.Loss
	}
	return loss.Quadratic{}
}

func (c Config) pool() *parallel.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return parallel.PoolFor(c.Workers)
}

// shardState is one sample partition: a raw KDE estimator plus the writer
// lock that serializes mutations of its sample buffers. Lock ordering:
// the group lock, when held, is always acquired BEFORE any shard lock;
// the ANALYZE sample copy takes a shard lock alone.
type shardState struct {
	mu  sync.Mutex
	est *kde.Estimator // nil for an empty shard (K exceeds the chunk count)

	replacements *metrics.Counter
	analyzes     *metrics.Counter
}

// viewSet is the immutable serving state published through one atomic
// pointer: all shard views were snapshotted under the same group lock, so
// they share one sample generation and one uniform bandwidth — a gather
// never mixes shards from different model states.
type viewSet struct {
	views  []*kde.View // length K; nil entries are empty shards
	sizes  []int       // per-shard sample sizes (0 for empty shards)
	sTotal int         // Σ sizes
	prec   mathx.Precision
}

// Group is a sharded adaptive KDE estimator over one table. All exported
// methods are safe for concurrent use; estimates are lock-free.
type Group struct {
	cfg Config
	tab *table.Table
	d   int
	k   int
	lf  loss.Function

	pool   *parallel.Pool
	faults *fault.Injector
	bufs   parallel.BufferPool

	views atomic.Pointer[viewSet]

	mu     sync.Mutex // guards everything below; ordered before shard locks
	closed bool
	shards []*shardState
	sTotal int
	h      []float64 // uniform bandwidth across shards
	learn  *learner.RMSprop
	karma  *sample.Karma
	res    *sample.Reservoir
	rng    *rand.Rand
	src    *countingSource
	prec   mathx.Precision
	// pinScale/pinOff freeze every shard's quantized-tier dequantization
	// constants to the values derived from the build-time global sample,
	// so K quantized shards encode the same int16 codes as one.
	pinScale []float32
	pinOff   []float32
	analyzes int // completed ANALYZE runs (seeds their optimizer RNG)
	anNext   int // round-robin ANALYZE target
	// ingestSeq is the change-feed cursor: the highest mutation sequence
	// number applied through ApplyMutations (see internal/ingest).
	ingestSeq uint64

	health    atomic.Int32
	evMu      sync.Mutex
	lastEvent string
	queries   atomic.Int64

	met groupMetrics
}

type groupMetrics struct {
	reg            *metrics.Registry
	gathers        *metrics.Counter
	degraded       *metrics.Counter
	feedbacks      *metrics.Counter
	analyzes       *metrics.Counter
	replacements   *metrics.Counter
	gradRejected   *metrics.Counter
	resAccepts     *metrics.Counter
	invalidInputs  *metrics.Counter
	ignoredDeletes *metrics.Counter
	ignoredUpdates *metrics.Counter
	deleteEvicts   *metrics.Counter
	updatePatches  *metrics.Counter
}

// Build constructs a K-shard group over tab. The global sample is drawn
// exactly like core.Build (same counted RNG stream from the same seed),
// the initial bandwidth is Scott's rule over the FULL global sample, and
// the quantized-tier constants are derived from the full sample and
// pinned into every shard — three invariants that make the group's
// estimates a pure function of (table, seed), independent of K.
func Build(tab *table.Table, cfg Config) (*Group, error) {
	if tab == nil {
		return nil, errors.New("shard: nil table")
	}
	if tab.Len() == 0 {
		return nil, errors.New("shard: cannot build a group over an empty table")
	}
	d := tab.Dims()
	k := cfg.shards()
	src := newCountingSource(cfg.Seed + 1)
	rng := rand.New(src)
	s := cfg.sampleSize()
	if s > tab.Len() {
		s = tab.Len()
	}
	flat, err := tab.SampleFlat(s, rng)
	if err != nil {
		return nil, err
	}
	h := kde.ScottBandwidth(flat, d)
	pinScale, pinOff := kde.QuantConstants(flat, d)

	g := &Group{
		cfg:      cfg,
		tab:      tab,
		d:        d,
		k:        k,
		lf:       cfg.loss(),
		pool:     cfg.pool(),
		faults:   cfg.Faults,
		sTotal:   s,
		h:        h,
		rng:      rng,
		src:      src,
		prec:     cfg.Precision,
		pinScale: pinScale,
		pinOff:   pinOff,
	}
	if g.shards, err = buildShards(flat, d, k, g.pool, h, pinScale, pinOff, cfg.Precision); err != nil {
		return nil, err
	}
	if g.learn, err = learner.NewRMSprop(d, cfg.Learner); err != nil {
		return nil, err
	}
	kcfg := cfg.Karma
	if kcfg.Loss == nil {
		kcfg.Loss = g.lf
	}
	if g.karma, err = sample.NewKarma(s, kcfg); err != nil {
		return nil, err
	}
	if g.res, err = sample.NewReservoir(s, tab.Len(), rng); err != nil {
		return nil, err
	}
	tab.Subscribe(g)
	g.instrument(cfg.Metrics)
	g.mu.Lock()
	g.publishLocked()
	g.mu.Unlock()
	return g, nil
}

// buildShards partitions the global row-major sample onto K shard
// estimators by the chunk-round-robin rule and configures each with the
// shared pool, the uniform bandwidth, the pinned quantization constants,
// and the serving precision. Shards beyond the global chunk count stay
// nil (empty).
func buildShards(flat []float64, d, k int, pool *parallel.Pool, h []float64, pinScale, pinOff []float32, prec mathx.Precision) ([]*shardState, error) {
	s := len(flat) / d
	nc := parallel.Chunks(s)
	shards := make([]*shardState, k)
	for i := range shards {
		shards[i] = &shardState{}
	}
	for i := 0; i < k && i < nc; i++ {
		var part []float64
		for c := i; c < nc; c += k {
			lo, hi := parallel.ChunkBounds(c, s)
			part = append(part, flat[lo*d:hi*d]...)
		}
		est, err := kde.New(d, nil)
		if err != nil {
			return nil, err
		}
		est.SetPool(pool)
		if err := est.SetSampleFlat(part); err != nil {
			return nil, err
		}
		if err := est.PinQuantConstants(pinScale, pinOff); err != nil {
			return nil, err
		}
		if err := est.SetBandwidth(h); err != nil {
			return nil, err
		}
		if prec != mathx.Float64 {
			est.SetPrecision(prec)
		}
		shards[i].est = est
	}
	return shards, nil
}

func (g *Group) instrument(reg *metrics.Registry) {
	g.met.reg = reg
	if reg == nil {
		return
	}
	g.met.gathers = reg.Counter("shard.gathers")
	g.met.degraded = reg.Counter("shard.degraded_gathers")
	g.met.feedbacks = reg.Counter("shard.feedbacks")
	g.met.analyzes = reg.Counter("shard.analyzes")
	g.met.replacements = reg.Counter("shard.replacements")
	g.met.gradRejected = reg.Counter("shard.grad_rejected")
	g.met.resAccepts = reg.Counter("shard.res_accepts")
	g.met.invalidInputs = reg.Counter("shard.invalid_inputs")
	g.met.ignoredDeletes = reg.Counter("shard.ignored_deletes")
	g.met.ignoredUpdates = reg.Counter("shard.ignored_updates")
	g.met.deleteEvicts = reg.Counter("shard.delete_evictions")
	g.met.updatePatches = reg.Counter("shard.update_patches")
	reg.RegisterGaugeFunc("shard.shards", func() float64 { return float64(g.k) })
	reg.RegisterGaugeFunc("shard.sample_size", func() float64 {
		if vs := g.views.Load(); vs != nil {
			return float64(vs.sTotal)
		}
		return 0
	})
	for i, sh := range g.shards {
		sv := reg.WithPrefix(fmt.Sprintf("shard%d.", i))
		sh.replacements = sv.Counter("replacements")
		sh.analyzes = sv.Counter("analyzes")
		est := sh.est
		sv.RegisterGaugeFunc("size", func() float64 {
			if est == nil {
				return 0
			}
			return float64(est.Size())
		})
	}
}

// publishLocked snapshots every shard into a fresh view set and swaps it
// in. Caller holds g.mu; sample mutations all happen under g.mu, so the
// snapshots of one publish are mutually consistent.
func (g *Group) publishLocked() {
	prev := g.views.Load()
	vs := &viewSet{
		views:  make([]*kde.View, g.k),
		sizes:  make([]int, g.k),
		prec:   g.prec,
		sTotal: 0,
	}
	for i, sh := range g.shards {
		if sh.est == nil {
			continue
		}
		var pv *kde.View
		if prev != nil {
			pv = prev.views[i]
		}
		vs.views[i] = sh.est.Snapshot(pv)
		vs.sizes[i] = sh.est.Size()
		vs.sTotal += vs.sizes[i]
	}
	g.views.Store(vs)
}

// Republish re-snapshots the current model state — e.g. to pin a changed
// process-global erf mode into the serving views.
func (g *Group) Republish() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed {
		g.publishLocked()
	}
}

// setHealth degrades monotonically (never back toward Healthy), exactly
// like the serving core's rung semantics.
func (g *Group) setHealth(h core.Health, reason string) {
	for {
		cur := g.health.Load()
		if int32(h) <= cur {
			return
		}
		if g.health.CompareAndSwap(cur, int32(h)) {
			g.evMu.Lock()
			g.lastEvent = reason
			g.evMu.Unlock()
			return
		}
	}
}

// Health returns the group's degradation rung.
func (g *Group) Health() core.Health { return core.Health(g.health.Load()) }

// LastDegradation describes the most recent health transition.
func (g *Group) LastDegradation() string {
	g.evMu.Lock()
	defer g.evMu.Unlock()
	return g.lastEvent
}

// Dims returns the model dimensionality.
func (g *Group) Dims() int { return g.d }

// Shards returns K.
func (g *Group) Shards() int { return g.k }

// Size returns the total sample size across shards.
func (g *Group) Size() int {
	if vs := g.views.Load(); vs != nil {
		return vs.sTotal
	}
	return 0
}

// ShardSizes returns the per-shard sample sizes.
func (g *Group) ShardSizes() []int {
	vs := g.views.Load()
	if vs == nil {
		return make([]int, g.k)
	}
	return append([]int(nil), vs.sizes...)
}

// Queries returns the number of estimated queries.
func (g *Group) Queries() int { return int(g.queries.Load()) }

// Bandwidth returns a copy of the current uniform bandwidth.
func (g *Group) Bandwidth() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]float64(nil), g.h...)
}

// Precision returns the configured serving precision.
func (g *Group) Precision() mathx.Precision {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.prec
}

// SetPrecision switches every shard's serving tier and republishes.
func (g *Group) SetPrecision(p mathx.Precision) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.prec = p
	for _, sh := range g.shards {
		if sh.est != nil {
			sh.mu.Lock()
			sh.est.SetPrecision(p)
			sh.mu.Unlock()
		}
	}
	g.publishLocked()
}

// Close detaches the group: subsequent mutations (feedback, ANALYZE,
// checkpoint, inserts) fail with ErrClosed and the group's gauge functions
// are unregistered, but the last published snapshot stays live — exactly
// like core.Server.Close — so estimates racing an eviction finish normally
// from a handle they already hold instead of failing mid-request.
func (g *Group) Close() {
	// Unsubscribe before taking g.mu: Table.Unsubscribe waits out in-flight
	// callbacks, and those callbacks take g.mu — holding it here would
	// deadlock. After Unsubscribe returns the feed can no longer reach g.
	g.tab.Unsubscribe(g)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	if g.met.reg != nil {
		g.met.reg.UnregisterGaugeFuncsPrefix("shard")
	}
}

// validateQuery applies the serving core's strict query validation
// (shape, NaN, ±Inf, inverted bounds) so the HTTP layer maps failures to
// the same 400 taxonomy via core.ErrInvalidQuery.
func validateQuery(d int, q query.Range) error {
	if len(q.Lo) != len(q.Hi) {
		return &core.InvalidQueryError{Dim: -1, Reason: fmt.Sprintf("bound length mismatch: %d vs %d", len(q.Lo), len(q.Hi))}
	}
	if q.Dims() != d {
		return &core.InvalidQueryError{Dim: -1, Reason: fmt.Sprintf("query has %d dims, estimator has %d", q.Dims(), d)}
	}
	for j := range q.Lo {
		lo, hi := q.Lo[j], q.Hi[j]
		switch {
		case math.IsNaN(lo) || math.IsNaN(hi):
			return &core.InvalidQueryError{Dim: j, Reason: "NaN bound"}
		case math.IsInf(lo, 0) || math.IsInf(hi, 0):
			return &core.InvalidQueryError{Dim: j, Reason: "infinite bound"}
		case lo > hi:
			return &core.InvalidQueryError{Dim: j, Reason: fmt.Sprintf("inverted bounds [%g, %g]", lo, hi)}
		}
	}
	return nil
}

// Estimate estimates one query.
func (g *Group) Estimate(q query.Range) (float64, error) {
	est, _, err := g.EstimateDetail(context.Background(), q)
	return est, err
}

// EstimateContext is Estimate with deadline/cancellation propagation: the
// context is consulted before the scatter, at each shard task, and before
// the gather, so an expired request never burns shard CPU.
func (g *Group) EstimateContext(ctx context.Context, q query.Range) (float64, error) {
	est, _, err := g.EstimateDetail(ctx, q)
	return est, err
}

// EstimateDetail is EstimateContext plus the per-request degraded flag:
// true when the gather lost at least one shard and renormalized over the
// survivors.
func (g *Group) EstimateDetail(ctx context.Context, q query.Range) (float64, bool, error) {
	ests := [1]float64{}
	degraded, err := g.EstimateBatchDetail(ctx, []query.Range{q}, ests[:])
	if err != nil {
		return 0, false, err
	}
	return ests[0], degraded, nil
}

// EstimateBatch estimates every query of qs into ests (length len(qs)).
// Bit-identical to the same batch against a single-shard group — and to
// an unsharded kde.Estimator over the same global sample — for any K and
// any worker count.
func (g *Group) EstimateBatch(qs []query.Range, ests []float64) error {
	_, err := g.EstimateBatchDetail(context.Background(), qs, ests)
	return err
}

// EstimateBatchDetail scatters the batch across the shards and gathers
// the per-chunk partials in global chunk order. It reports whether the
// result was degraded by a shard failure (renormalized over survivors).
func (g *Group) EstimateBatchDetail(ctx context.Context, qs []query.Range, ests []float64) (bool, error) {
	nq := len(qs)
	if len(ests) != nq {
		return false, fmt.Errorf("shard: estimate buffer has %d entries, want %d", len(ests), nq)
	}
	for i := range qs {
		if err := validateQuery(g.d, qs[i]); err != nil {
			g.met.invalidInputs.Inc()
			return false, err
		}
	}
	if nq == 0 {
		return false, nil
	}
	vs := g.views.Load()
	if vs == nil || vs.sTotal == 0 {
		return false, ErrClosed
	}
	// Fault injection fires serially in shard-index order before the
	// scatter, so occurrence schedules are deterministic regardless of
	// how the pool interleaves the shard tasks.
	var failed []bool
	anyFail := false
	if g.faults != nil {
		failed = make([]bool, g.k)
		for k := 0; k < g.k; k++ {
			if vs.views[k] != nil && g.faults.Fire(fault.ShardFail) {
				failed[k] = true
				anyFail = true
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}

	partials := make([][]float64, g.k)
	errs := make([]error, g.k)
	g.pool.Each(g.k, func(k int) {
		v := vs.views[k]
		if v == nil || (failed != nil && failed[k]) {
			return
		}
		// Each shard task inherits the request deadline: once the
		// context is done, remaining shards skip their pass entirely.
		if ctx.Err() != nil {
			return
		}
		p := g.bufs.Get(parallel.Chunks(v.Size()) * nq)
		if err := v.SelectivityBatchPartials(qs, p); err != nil {
			errs[k] = err
			g.bufs.Put(p)
			return
		}
		partials[k] = p
	})
	release := func() {
		for _, p := range partials {
			if p != nil {
				g.bufs.Put(p)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		release()
		return false, err
	}
	for _, err := range errs {
		if err != nil {
			release()
			return false, err
		}
	}

	sSurv := vs.sTotal
	if anyFail {
		sSurv = 0
		for k := 0; k < g.k; k++ {
			if vs.views[k] != nil && !failed[k] {
				sSurv += vs.sizes[k]
			}
		}
		if sSurv == 0 {
			release()
			return false, fmt.Errorf("%w (%d of %d)", ErrAllShardsFailed, g.k, g.k)
		}
	}
	nc := parallel.Chunks(vs.sTotal)
	for iq := 0; iq < nq; iq++ {
		sum := 0.0
		for c := 0; c < nc; c++ {
			k := c % g.k
			if partials[k] == nil {
				continue // failed shard: renormalize over survivors
			}
			sum += partials[k][(c/g.k)*nq+iq]
		}
		// Division, not multiplication by a reciprocal: the single-shard
		// reduction divides, and one ULP is a bit-identity failure.
		ests[iq] = sum / float64(sSurv)
	}
	release()
	g.queries.Add(int64(nq))
	g.met.gathers.Inc()
	if anyFail {
		g.met.degraded.Inc()
		g.setHealth(core.Degraded, "shard lost during scatter; serving from survivors")
	}
	return anyFail, nil
}

// owner maps a global sample index to its shard and local index under the
// chunk-round-robin partitioning rule.
func (g *Group) owner(gi int) (shard, local int) {
	c := gi / parallel.ChunkSize
	return c % g.k, (c/g.k)*parallel.ChunkSize + gi%parallel.ChunkSize
}

// Feedback folds one executed query's true selectivity into the model:
// karma sample maintenance first (replacements route to the owning
// shard), then the RMSprop bandwidth step over the gradient gathered in
// global chunk order. The resulting model trajectory is invariant in K.
func (g *Group) Feedback(q query.Range, actual float64) error {
	if err := validateQuery(g.d, q); err != nil {
		g.met.invalidInputs.Inc()
		return err
	}
	if math.IsNaN(actual) || math.IsInf(actual, 0) {
		g.met.invalidInputs.Inc()
		return fmt.Errorf("%w: non-finite true selectivity %v", core.ErrInvalidFeedback, actual)
	}
	if actual < 0 {
		actual = 0
	} else if actual > 1 {
		actual = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	defer g.publishLocked()

	// Per-point contributions, gathered into global sample order, and the
	// estimate reduced over the global chunk grid — the inputs of the
	// karma update, identical for every K.
	contrib := make([]float64, g.sTotal)
	for k, sh := range g.shards {
		if sh.est == nil {
			continue
		}
		cbuf, _, err := sh.est.Contributions(q, nil)
		if err != nil {
			return err
		}
		size := sh.est.Size()
		for lc, lnc := 0, parallel.Chunks(size); lc < lnc; lc++ {
			c := lc*g.k + k
			glo, ghi := parallel.ChunkBounds(c, g.sTotal)
			llo := lc * parallel.ChunkSize
			copy(contrib[glo:ghi], cbuf[llo:llo+(ghi-glo)])
		}
	}
	nc := parallel.Chunks(g.sTotal)
	sum := 0.0
	for c := 0; c < nc; c++ {
		lo, hi := parallel.ChunkBounds(c, g.sTotal)
		ps := 0.0
		for i := lo; i < hi; i++ {
			ps += contrib[i]
		}
		sum += ps
	}
	est := sum / float64(g.sTotal)

	// Bandwidth gradient: per-shard chunk partials (mass + d gradient
	// terms) merged in the same global chunk order, then scaled by the
	// loss derivative (eq. 14).
	stride := g.d + 1
	gparts := make([][]float64, g.k)
	for k, sh := range g.shards {
		if sh.est == nil {
			continue
		}
		p := g.bufs.Get(parallel.Chunks(sh.est.Size()) * stride)
		if err := sh.est.GradientBatchPartials([]query.Range{q}, p); err != nil {
			return err
		}
		gparts[k] = p
	}
	msum := 0.0
	grad := make([]float64, g.d)
	for c := 0; c < nc; c++ {
		pr := gparts[c%g.k][(c/g.k)*stride:][:stride]
		msum += pr[0]
		for j := 0; j < g.d; j++ {
			grad[j] += pr[1+j]
		}
	}
	for _, p := range gparts {
		if p != nil {
			g.bufs.Put(p)
		}
	}
	inv := 1 / float64(g.sTotal)
	estG := msum * inv
	if g.faults.Fire(fault.GradientNonFinite) {
		grad[0] = math.NaN()
	}
	dl := g.lf.Deriv(estG, actual)
	for j := range grad {
		grad[j] = grad[j] * inv * dl
	}

	// Karma maintenance first (it consumes contributions computed under
	// the pre-step bandwidth), mirroring core.Feedback.
	bound := 0.0
	if actual == 0 {
		bound = sample.EmptyRegionBound(q, g.h)
	}
	idx, err := g.karma.Update(contrib, est, actual, bound)
	if err != nil {
		return err
	}
	for _, gi := range idx {
		row, ok := g.tab.RandomRow(g.rng)
		if !ok {
			break // empty table: nothing to replace with
		}
		g.replaceLocked(gi, row)
	}

	updated, oerr := g.learn.Observe(grad, g.h)
	if oerr != nil {
		// Same policy as the serving core: a rejected non-finite gradient
		// is absorbed, not propagated.
		g.met.gradRejected.Inc()
		g.met.feedbacks.Inc()
		return nil
	}
	if updated {
		bad := false
		for _, v := range g.h {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				bad = true
				break
			}
		}
		if bad {
			g.resetToScottLocked("learner produced a non-positive or non-finite bandwidth")
		} else {
			g.setBandwidthLocked()
		}
	}
	g.met.feedbacks.Inc()
	return nil
}

// replaceLocked swaps global sample index gi for row on its owning shard.
// Caller holds g.mu; the owning shard's lock bounds the mutation so an
// ANALYZE sample copy on that shard never observes a torn row.
func (g *Group) replaceLocked(gi int, row []float64) {
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return // a non-finite row would poison every future estimate
		}
	}
	k, li := g.owner(gi)
	sh := g.shards[k]
	if sh.est == nil {
		return
	}
	sh.mu.Lock()
	err := sh.est.ReplacePoint(li, row)
	sh.mu.Unlock()
	if err == nil {
		sh.replacements.Inc()
		g.met.replacements.Inc()
	}
}

// setBandwidthLocked installs g.h on every shard. Caller holds g.mu.
func (g *Group) setBandwidthLocked() {
	for _, sh := range g.shards {
		if sh.est == nil {
			continue
		}
		sh.mu.Lock()
		_ = sh.est.SetBandwidth(g.h)
		sh.mu.Unlock()
	}
}

// resetToScottLocked recovers from a poisoned bandwidth by re-deriving
// Scott's rule over the reassembled global sample. Caller holds g.mu.
func (g *Group) resetToScottLocked(reason string) {
	flat := g.sampleFlatLocked()
	copy(g.h, kde.ScottBandwidth(flat, g.d))
	g.setBandwidthLocked()
	g.learn.Reset()
	g.setHealth(core.Degraded, reason)
}

// sampleFlatLocked reassembles the global row-major sample from the
// shards in global index order. Caller holds g.mu.
func (g *Group) sampleFlatLocked() []float64 {
	flat := make([]float64, g.sTotal*g.d)
	for k, sh := range g.shards {
		if sh.est == nil {
			continue
		}
		data := sh.est.SampleFlat()
		size := sh.est.Size()
		for lc, lnc := 0, parallel.Chunks(size); lc < lnc; lc++ {
			c := lc*g.k + k
			glo, ghi := parallel.ChunkBounds(c, g.sTotal)
			llo := lc * parallel.ChunkSize
			copy(flat[glo*g.d:ghi*g.d], data[llo*g.d:(llo+(ghi-glo))*g.d])
		}
	}
	return flat
}

// Analyze re-optimizes the bandwidth over the next shard in round-robin
// order — the sharded ANALYZE entry point.
func (g *Group) Analyze(fbs []query.Feedback) error {
	g.mu.Lock()
	i := g.anNext % g.k
	g.anNext++
	g.mu.Unlock()
	return g.AnalyzeShard(i, fbs)
}

// AnalyzeShard re-runs the batch bandwidth optimization (§3.4) over shard
// i's sample and installs the result group-wide. The sample is copied
// under shard i's lock alone and the optimization holds NO lock, so
// estimates (lock-free) and feedback on other shards proceed throughout;
// only the final install takes the group lock.
func (g *Group) AnalyzeShard(i int, fbs []query.Feedback) error {
	if i < 0 || i >= g.k {
		return fmt.Errorf("shard: analyze target %d out of range [0,%d)", i, g.k)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.analyzes++
	n := g.analyzes
	g.mu.Unlock()

	sh := g.shards[i]
	sh.mu.Lock()
	var flat []float64
	if sh.est != nil {
		flat = append([]float64(nil), sh.est.SampleFlat()...)
	}
	sh.mu.Unlock()
	if len(flat) == 0 {
		return nil // empty shard: nothing to optimize
	}

	opts := bandwidth.OptimalConfig{
		Loss: g.lf,
		// A dedicated deterministic stream per run: the counted
		// maintenance RNG must not be perturbed by ANALYZE, or restored
		// groups would diverge from their checkpoint origin.
		Rand:    rand.New(rand.NewSource(g.cfg.Seed + 7919*int64(n))),
		Workers: g.cfg.Workers,
		Metrics: g.met.reg,
	}
	h, err := bandwidth.Optimal(flat, g.d, fbs, opts)
	if err != nil {
		// Degrade but keep serving under the pre-ANALYZE bandwidth.
		g.setHealth(core.Degraded, fmt.Sprintf("shard %d analyze failed: %v", i, err))
		return err
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	copy(g.h, h)
	g.setBandwidthLocked()
	sh.analyzes.Inc()
	g.met.analyzes.Inc()
	g.publishLocked()
	return nil
}

// findSlotLocked scans the global sample in global index order for an
// exact match of row, returning -1 when absent. Global order — not
// shard-by-shard — makes the chosen slot invariant in K even when the
// sample holds duplicates, mirroring core.Estimator.findSampleSlot.
// Caller holds g.mu.
func (g *Group) findSlotLocked(row []float64) int {
	flats := make([][]float64, g.k)
	for k, sh := range g.shards {
		if sh.est != nil {
			flats[k] = sh.est.SampleFlat()
		}
	}
	d := g.d
slots:
	for gi := 0; gi < g.sTotal; gi++ {
		k, li := g.owner(gi)
		flat := flats[k]
		if flat == nil || (li+1)*d > len(flat) {
			continue
		}
		p := flat[li*d : (li+1)*d]
		for j, v := range row {
			if p[j] != v {
				continue slots
			}
		}
		return gi
	}
	return -1
}

// applyInsertLocked runs reservoir sampling (§4.2) against the GLOBAL
// reservoir, routing the accepted slot to its owning shard. Caller holds
// g.mu; returns whether the sample changed.
func (g *Group) applyInsertLocked(row []float64) bool {
	if g.res == nil {
		return false
	}
	slot, accept := g.res.Offer()
	if !accept {
		return false
	}
	g.met.resAccepts.Inc()
	r := append([]float64(nil), row...)
	g.replaceLocked(slot, r)
	g.karma.Reset(slot)
	return true
}

// applyDeleteLocked evicts a deleted tuple's sampled pre-image, replacing
// it with a copy of a uniformly random surviving sample point (drawn from
// the global counted rng, looked up in global index order, so the outcome
// is invariant in K and bit-identical to the unsharded path). Like
// core.Estimator.applyDelete it never touches the table: the apply path
// runs while table writers may be parked on ring backpressure. Deletes of
// unsampled tuples stay deferred to karma (shard.ignored_deletes). Caller
// holds g.mu.
func (g *Group) applyDeleteLocked(row []float64) bool {
	if g.res == nil {
		return false
	}
	slot := g.findSlotLocked(row)
	if slot < 0 {
		g.met.ignoredDeletes.Inc()
		return false
	}
	if g.sTotal < 2 {
		g.met.ignoredDeletes.Inc()
		return false
	}
	j := g.rng.Intn(g.sTotal - 1)
	if j >= slot {
		j++
	}
	k, li := g.owner(j)
	sh := g.shards[k]
	if sh.est == nil {
		g.met.ignoredDeletes.Inc()
		return false
	}
	repl := append([]float64(nil), sh.est.SampleFlat()[li*g.d:(li+1)*g.d]...)
	g.replaceLocked(slot, repl)
	g.karma.Reset(slot)
	g.met.deleteEvicts.Inc()
	return true
}

// applyUpdateLocked patches an updated tuple's sampled pre-image in place
// with the post-image and resets its karma; updates of unsampled tuples
// stay deferred to karma (shard.ignored_updates). Caller holds g.mu.
func (g *Group) applyUpdateLocked(pre, post []float64) bool {
	if g.res == nil {
		return false
	}
	slot := g.findSlotLocked(pre)
	if slot < 0 {
		g.met.ignoredUpdates.Inc()
		return false
	}
	r := append([]float64(nil), post...)
	g.replaceLocked(slot, r)
	g.karma.Reset(slot)
	g.met.updatePatches.Inc()
	return true
}

// applyMutationLocked dispatches one change-feed event and advances the
// ingest cursor. Caller holds g.mu.
func (g *Group) applyMutationLocked(m *table.Mutation) bool {
	var changed bool
	switch m.Kind {
	case table.MutInsert:
		changed = g.applyInsertLocked(m.Row)
	case table.MutDelete:
		changed = g.applyDeleteLocked(m.Row)
	case table.MutUpdate:
		changed = g.applyUpdateLocked(m.Pre, m.Row)
	}
	if m.Seq > g.ingestSeq {
		g.ingestSeq = m.Seq
	}
	return changed
}

// ApplyMutations applies a batch of change-feed events in sequence order
// under g.mu with a single view-set republish at the end — the sharded
// counterpart of core.Server.ApplyMutations, driven by the ingestion
// bridge. Bit-identical to one-at-a-time apply at every K: only the
// publish frequency differs.
func (g *Group) ApplyMutations(ms []table.Mutation) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	changed := false
	for i := range ms {
		if g.applyMutationLocked(&ms[i]) {
			changed = true
		}
	}
	if changed {
		g.publishLocked()
	}
	return nil
}

// IngestCursor returns the highest change-feed sequence number applied so
// far; it is captured in group checkpoints for exactly-once resume.
func (g *Group) IngestCursor() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ingestSeq
}

// Detach removes the group's direct table subscription; a serving stack
// then routes the feed through ApplyMutations via the ingestion bridge.
func (g *Group) Detach() { g.tab.Unsubscribe(g) }

// OnInsert implements table.Listener: the direct single-writer path.
// Serving stacks detach it and route the feed through internal/ingest.
func (g *Group) OnInsert(row []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	if g.applyInsertLocked(row) {
		g.publishLocked()
	}
}

// OnDelete implements table.Listener (direct single-writer path); see
// applyDeleteLocked for the evict-and-resample semantics.
func (g *Group) OnDelete(row []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	if g.applyDeleteLocked(row) {
		g.publishLocked()
	}
}

// OnUpdate implements table.Listener (direct single-writer path); see
// applyUpdateLocked for the patch-in-place semantics.
func (g *Group) OnUpdate(oldRow, newRow []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	if g.applyUpdateLocked(oldRow, newRow) {
		g.publishLocked()
	}
}
