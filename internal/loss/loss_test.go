package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var all = []Function{
	Quadratic{}, Absolute{}, Relative{}, SquaredRelative{}, SquaredQ{},
}

func TestZeroAtPerfectEstimate(t *testing.T) {
	for _, f := range all {
		for _, v := range []float64{0, 0.01, 0.5, 1} {
			if l := f.Loss(v, v); l != 0 {
				t.Errorf("%s: Loss(%g,%g) = %g, want 0", f.Name(), v, v, l)
			}
		}
	}
}

func TestNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		est, act := rng.Float64(), rng.Float64()
		for _, f := range all {
			if l := f.Loss(est, act); l < 0 {
				t.Fatalf("%s: Loss(%g,%g) = %g < 0", f.Name(), est, act, l)
			}
		}
	}
}

func TestQuadraticKnownValues(t *testing.T) {
	q := Quadratic{}
	if l := q.Loss(0.3, 0.1); math.Abs(l-0.04) > 1e-15 {
		t.Errorf("Loss = %g, want 0.04", l)
	}
	if d := q.Deriv(0.3, 0.1); math.Abs(d-0.4) > 1e-15 {
		t.Errorf("Deriv = %g, want 0.4", d)
	}
}

func TestAbsoluteSignStructure(t *testing.T) {
	a := Absolute{}
	if a.Deriv(0.1, 0.5) != -1 || a.Deriv(0.5, 0.1) != 1 || a.Deriv(0.2, 0.2) != 0 {
		t.Error("Absolute derivative sign structure wrong")
	}
}

func TestRelativeSmoothing(t *testing.T) {
	r := Relative{}
	// With actual = 0 the loss is est/λ, finite thanks to smoothing.
	l := r.Loss(0.5, 0)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatalf("smoothed relative loss should be finite, got %g", l)
	}
	if want := 0.5 / DefaultLambda; math.Abs(l-want) > 1e-6*want {
		t.Errorf("Loss = %g, want %g", l, want)
	}
	custom := Relative{Lambda: 0.1}
	if got, want := custom.Loss(0.2, 0), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("custom lambda loss = %g, want %g", got, want)
	}
}

func TestSquaredQPenalizesRatio(t *testing.T) {
	q := SquaredQ{Lambda: 1e-9}
	// Over- and underestimation by the same *factor* incur the same loss.
	over := q.Loss(0.4, 0.1)
	under := q.Loss(0.1, 0.4)
	if math.Abs(over-under) > 1e-9 {
		t.Errorf("q-error should be symmetric in ratio: %g vs %g", over, under)
	}
	// log(4)^2
	want := math.Pow(math.Log(4), 2)
	if math.Abs(over-want) > 1e-6 {
		t.Errorf("Loss = %g, want about %g", over, want)
	}
}

// Property: every analytic derivative matches central differences where the
// loss is differentiable.
func TestDerivMatchesNumerical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		est := rng.Float64()
		act := rng.Float64()
		if math.Abs(est-act) < 1e-4 {
			return true // skip the L1 kink neighborhood
		}
		const eps = 1e-7
		for _, fn := range all {
			numeric := (fn.Loss(est+eps, act) - fn.Loss(est-eps, act)) / (2 * eps)
			analytic := fn.Deriv(est, act)
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(analytic)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	names := []string{"quadratic", "absolute", "relative", "squared-relative", "squared-q"}
	for _, n := range names {
		f, ok := ByName(n)
		if !ok || f.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, f, ok)
		}
	}
	if f, ok := ByName("l2"); !ok || f.Name() != "quadratic" {
		t.Error("alias l2 should resolve to quadratic")
	}
	if _, ok := ByName("hinge"); ok {
		t.Error("unknown loss should not resolve")
	}
}
