// Package loss implements the differentiable error metrics of paper
// Appendix C.1. Each metric exposes the loss between an estimated and an
// actual selectivity together with its partial derivative with respect to
// the estimate — the estimator-independent factor of the bandwidth gradient
// (paper eq. 14).
package loss

import "math"

// DefaultLambda is the smoothing constant that guards the relative and
// Q-error metrics against divisions by (or logarithms of) zero. One over a
// large table cardinality is a natural scale; 1e-6 corresponds to a
// million-row relation.
const DefaultLambda = 1e-6

// Function is a differentiable loss between an estimated and an actual
// selectivity, both fractions in [0, 1].
type Function interface {
	// Name identifies the metric in experiment output.
	Name() string
	// Loss returns L(est, actual).
	Loss(est, actual float64) float64
	// Deriv returns ∂L/∂est at (est, actual).
	Deriv(est, actual float64) float64
}

// Quadratic is the squared (L2) error (est − actual)².
type Quadratic struct{}

// Name implements Function.
func (Quadratic) Name() string { return "quadratic" }

// Loss implements Function.
func (Quadratic) Loss(est, actual float64) float64 {
	d := est - actual
	return d * d
}

// Deriv implements Function.
func (Quadratic) Deriv(est, actual float64) float64 { return 2 * (est - actual) }

// Absolute is the absolute (L1) error |est − actual|.
type Absolute struct{}

// Name implements Function.
func (Absolute) Name() string { return "absolute" }

// Loss implements Function.
func (Absolute) Loss(est, actual float64) float64 { return math.Abs(est - actual) }

// Deriv implements Function. The subgradient at est == actual is 0.
func (Absolute) Deriv(est, actual float64) float64 {
	switch {
	case est < actual:
		return -1
	case est > actual:
		return 1
	default:
		return 0
	}
}

// Relative is the smoothed relative error |est − actual| / (λ + actual).
type Relative struct {
	// Lambda is the positive smoothing constant; zero means DefaultLambda.
	Lambda float64
}

func (r Relative) lambda() float64 {
	if r.Lambda > 0 {
		return r.Lambda
	}
	return DefaultLambda
}

// Name implements Function.
func (Relative) Name() string { return "relative" }

// Loss implements Function.
func (r Relative) Loss(est, actual float64) float64 {
	return math.Abs(est-actual) / (r.lambda() + actual)
}

// Deriv implements Function.
func (r Relative) Deriv(est, actual float64) float64 {
	return Absolute{}.Deriv(est, actual) / (r.lambda() + actual)
}

// SquaredRelative is the squared smoothed relative error
// ((est − actual)/(λ + actual))².
type SquaredRelative struct {
	// Lambda is the positive smoothing constant; zero means DefaultLambda.
	Lambda float64
}

func (r SquaredRelative) lambda() float64 {
	if r.Lambda > 0 {
		return r.Lambda
	}
	return DefaultLambda
}

// Name implements Function.
func (SquaredRelative) Name() string { return "squared-relative" }

// Loss implements Function.
func (r SquaredRelative) Loss(est, actual float64) float64 {
	d := (est - actual) / (r.lambda() + actual)
	return d * d
}

// Deriv implements Function.
func (r SquaredRelative) Deriv(est, actual float64) float64 {
	l := r.lambda() + actual
	return 2 * (est - actual) / (l * l)
}

// SquaredQ is the squared Q-error of Moerkotte et al. [31]:
// (log(λ + est) − log(λ + actual))².
type SquaredQ struct {
	// Lambda is the positive smoothing constant; zero means DefaultLambda.
	Lambda float64
}

func (q SquaredQ) lambda() float64 {
	if q.Lambda > 0 {
		return q.Lambda
	}
	return DefaultLambda
}

// Name implements Function.
func (SquaredQ) Name() string { return "squared-q" }

// Loss implements Function.
func (q SquaredQ) Loss(est, actual float64) float64 {
	l := q.lambda()
	d := math.Log(l+est) - math.Log(l+actual)
	return d * d
}

// Deriv implements Function.
func (q SquaredQ) Deriv(est, actual float64) float64 {
	l := q.lambda()
	return 2 * (math.Log(l+est) - math.Log(l+actual)) / (l + est)
}

// ByName returns the loss function registered under name and whether it
// exists. Names: quadratic, absolute, relative, squared-relative, squared-q.
func ByName(name string) (Function, bool) {
	switch name {
	case "quadratic", "l2":
		return Quadratic{}, true
	case "absolute", "l1":
		return Absolute{}, true
	case "relative":
		return Relative{}, true
	case "squared-relative":
		return SquaredRelative{}, true
	case "squared-q", "q2":
		return SquaredQ{}, true
	}
	return nil, false
}
