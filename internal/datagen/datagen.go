// Package datagen generates the evaluation datasets of paper §6.1.2. The
// synthetic dataset of Gunopulos et al. [14] is implemented faithfully
// (random hyper-rectangular clusters with uniform interiors plus uniform
// noise). The four UCI datasets — Bike, Forest, Power, Protein — are
// replaced by generators tuned to mimic each dataset's character: size,
// dimensionality, correlation structure, skew, and discreteness. DESIGN.md
// records this substitution; the experiments need realistic correlation and
// degeneracy, not the literal UCI bytes.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a named collection of rows with uniform arity.
type Dataset struct {
	Name string
	Rows [][]float64
}

// Dims returns the dataset's arity (0 when empty).
func (ds Dataset) Dims() int {
	if len(ds.Rows) == 0 {
		return 0
	}
	return len(ds.Rows[0])
}

// Project returns a copy of ds restricted to the given attribute indices,
// the operation the paper uses to derive 3- and 8-dimensional versions.
func (ds Dataset) Project(dims []int) (Dataset, error) {
	d := ds.Dims()
	for _, j := range dims {
		if j < 0 || j >= d {
			return Dataset{}, fmt.Errorf("datagen: projection index %d out of range [0,%d)", j, d)
		}
	}
	out := Dataset{Name: fmt.Sprintf("%s(%dd)", ds.Name, len(dims))}
	out.Rows = make([][]float64, len(ds.Rows))
	for i, r := range ds.Rows {
		p := make([]float64, len(dims))
		for k, j := range dims {
			p[k] = r[j]
		}
		out.Rows[i] = p
	}
	return out, nil
}

// RandomProjection projects ds onto d randomly chosen distinct attributes.
func (ds Dataset) RandomProjection(d int, rng *rand.Rand) (Dataset, error) {
	full := ds.Dims()
	if d > full {
		return Dataset{}, fmt.Errorf("datagen: cannot project %d dims onto %d", full, d)
	}
	perm := rng.Perm(full)
	return ds.Project(perm[:d])
}

// Synthetic generates the clustered dataset of [14]: `clusters` random
// hyper-rectangles in the unit cube, each filled uniformly, plus a
// uniformly distributed noise fraction.
func Synthetic(rng *rand.Rand, n, d, clusters int, noiseFrac float64) Dataset {
	if clusters < 1 {
		clusters = 1
	}
	if noiseFrac < 0 {
		noiseFrac = 0
	}
	if noiseFrac > 1 {
		noiseFrac = 1
	}
	type box struct{ lo, hi []float64 }
	boxes := make([]box, clusters)
	for c := range boxes {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			side := 0.05 + rng.Float64()*0.25
			start := rng.Float64() * (1 - side)
			lo[j], hi[j] = start, start+side
		}
		boxes[c] = box{lo, hi}
	}
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		if rng.Float64() < noiseFrac {
			for j := 0; j < d; j++ {
				row[j] = rng.Float64()
			}
		} else {
			b := boxes[rng.Intn(clusters)]
			for j := 0; j < d; j++ {
				row[j] = b.lo[j] + rng.Float64()*(b.hi[j]-b.lo[j])
			}
		}
		rows[i] = row
	}
	return Dataset{Name: "synthetic", Rows: rows}
}

// Bike mimics the Washington DC bike-sharing dataset: 16 attributes of
// hourly usage driven by time-of-day, season, and weather, with strongly
// correlated temperature readings and count columns that are sums of their
// parts.
func Bike(rng *rand.Rand, n int) Dataset {
	rows := make([][]float64, n)
	for i := range rows {
		// Each observation is a random hour within a two-year window, so
		// every calendar-derived column is informative (non-constant) at
		// any generated size. The real dataset is a contiguous two-year
		// hourly series; a random sample of it has the same marginals and
		// correlations.
		t := rng.Intn(24 * 365 * 2)
		instant := float64(t)
		hour := float64(t % 24)
		dayOfYear := float64((t / 24) % 365)
		month := math.Floor(dayOfYear/30.44) + 1
		season := math.Floor((month-1)/3) + 1
		weekday := float64((t / 24) % 7)
		workingday := 1.0
		if weekday >= 5 {
			workingday = 0
		}
		holiday := 0.0
		if rng.Float64() < 0.03 {
			holiday, workingday = 1, 0
		}
		yr := math.Floor(float64(t) / (24 * 365))

		seasonal := 12 + 12*math.Sin(2*math.Pi*(dayOfYear-100)/365)
		diurnal := 4 * math.Sin(2*math.Pi*(hour-14)/24)
		temp := seasonal + diurnal + rng.NormFloat64()*2.5
		atemp := temp + rng.NormFloat64()*1.2
		humidity := clamp(65-0.8*temp+rng.NormFloat64()*9, 5, 100)
		windspeed := math.Abs(rng.NormFloat64()) * 8
		weathersit := 1.0
		if humidity > 75 {
			weathersit = 2
		}
		if humidity > 88 {
			weathersit = 3
		}

		commute := math.Exp(-sq(hour-8)/8) + math.Exp(-sq(hour-17.5)/8)
		leisure := math.Exp(-sq(hour-14) / 18)
		tempBoost := clamp(1+0.04*(temp-10), 0.2, 2)
		casual := math.Max(0, 40*leisure*tempBoost*(1.4-workingday*0.8)+rng.NormFloat64()*8)
		registered := math.Max(0, 180*commute*tempBoost*(0.3+workingday*0.9)+40*leisure+rng.NormFloat64()*20)
		count := casual + registered

		rows[i] = []float64{
			instant, season, yr, month, hour, holiday, weekday, workingday,
			weathersit, temp, atemp, humidity, windspeed, casual, registered, count,
		}
	}
	return Dataset{Name: "bike", Rows: rows}
}

// Forest mimics the 10 continuous attributes of the US forest cover
// geological survey: elevation-driven correlations, circular aspect, and
// hillshade channels coupled to slope and aspect.
func Forest(rng *rand.Rand, n int) Dataset {
	rows := make([][]float64, n)
	for i := range rows {
		elevation := 2750 + rng.NormFloat64()*280
		aspect := rng.Float64() * 360
		slope := math.Abs(rng.NormFloat64()) * 8
		hDistHydro := math.Abs(rng.NormFloat64())*200 + (elevation-2500)*0.05
		vDistHydro := hDistHydro*0.2 + rng.NormFloat64()*30
		hDistRoad := math.Abs(rng.NormFloat64())*1200 + (elevation-2500)*1.6
		aspectRad := aspect * math.Pi / 180
		hill9 := clamp(220+40*math.Cos(aspectRad-math.Pi/4)-2*slope+rng.NormFloat64()*10, 0, 255)
		hillNoon := clamp(235-1.5*slope+rng.NormFloat64()*8, 0, 255)
		hill3 := clamp(220+40*math.Cos(aspectRad-5*math.Pi/4)-2*slope+rng.NormFloat64()*10, 0, 255)
		hDistFire := math.Abs(rng.NormFloat64())*1500 + hDistRoad*0.3
		rows[i] = []float64{
			elevation, aspect, slope, hDistHydro, vDistHydro,
			hDistRoad, hill9, hillNoon, hill3, hDistFire,
		}
	}
	return Dataset{Name: "forest", Rows: rows}
}

// Power mimics the household electric power consumption time series: a
// strongly autocorrelated load with a daily pattern, voltage anti-correlated
// with load, intensity derived from both, and three spiky, mostly-zero
// discrete sub-metering channels.
func Power(rng *rand.Rand, n int) Dataset {
	rows := make([][]float64, n)
	ar := 0.0 // AR(1) load noise
	for i := range rows {
		minuteOfDay := float64(i % 1440)
		hour := math.Floor(minuteOfDay / 60)
		daily := 0.8 + 0.7*math.Exp(-sq(minuteOfDay-480)/20000) + 1.1*math.Exp(-sq(minuteOfDay-1200)/30000)
		ar = 0.95*ar + rng.NormFloat64()*0.1
		activePower := math.Max(0.05, daily+ar)
		reactivePower := math.Max(0, activePower*0.1+rng.NormFloat64()*0.05)
		voltage := 241 - activePower*1.2 + rng.NormFloat64()*1.5
		intensity := activePower * 1000 / voltage / 230 * 56 // ampere-ish scale

		sub1, sub2, sub3 := 0.0, 0.0, 0.0
		if rng.Float64() < 0.08 { // kitchen
			sub1 = float64(rng.Intn(40))
		}
		if rng.Float64() < 0.12 { // laundry
			sub2 = float64(rng.Intn(30))
		}
		if hour >= 6 && hour <= 23 && rng.Float64() < 0.5 { // water heater / AC
			sub3 = float64(5 + rng.Intn(15))
		}
		rows[i] = []float64{
			float64(i), hour, activePower, reactivePower, voltage,
			intensity, sub1, sub2, sub3,
		}
	}
	return Dataset{Name: "power", Rows: rows}
}

// Protein mimics the physiochemical properties of protein tertiary
// structure: nine positive, right-skewed attributes driven by shared latent
// size/compactness factors.
func Protein(rng *rand.Rand, n int) Dataset {
	rows := make([][]float64, n)
	for i := range rows {
		size := math.Exp(rng.NormFloat64()*0.4 + 9) // total surface area scale
		compact := 0.3 + 0.4*rng.Float64()          // fraction non-polar
		rmsd := math.Abs(rng.NormFloat64()) * 6     // target quality
		f1 := size * (1 + rmsd*0.02)                // total surface area
		f2 := f1 * compact * (1 + rng.NormFloat64()*0.05)
		f3 := f1 * (1 - compact) * (1 + rng.NormFloat64()*0.05)
		f4 := size / 50 * (1 + rng.NormFloat64()*0.1)   // residue count proxy
		f5 := f4 * (120 + rng.NormFloat64()*10)         // molecular mass
		f6 := math.Abs(rng.NormFloat64())*100 + rmsd*20 // deviation measure
		f7 := 1000 + f4*30 + rng.NormFloat64()*200      // euclidean distance sum
		f8 := math.Abs(rng.NormFloat64()*40) + f6*0.3
		rows[i] = []float64{rmsd, f1, f2, f3, f4, f5, f6, f7, f8}
	}
	return Dataset{Name: "protein", Rows: rows}
}

// ByName builds the named dataset with n rows: synthetic, bike, forest,
// power, or protein. The synthetic dataset uses 8 source dimensions, 10
// clusters, and 10% noise, per [14].
func ByName(name string, rng *rand.Rand, n int) (Dataset, error) {
	switch name {
	case "synthetic":
		return Synthetic(rng, n, 8, 10, 0.1), nil
	case "bike":
		return Bike(rng, n), nil
	case "forest":
		return Forest(rng, n), nil
	case "power":
		return Power(rng, n), nil
	case "protein":
		return Protein(rng, n), nil
	}
	return Dataset{}, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Names lists the available datasets in evaluation order.
func Names() []string { return []string{"bike", "forest", "power", "protein", "synthetic"} }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sq(v float64) float64 { return v * v }
