package datagen

import (
	"math"
	"math/rand"
	"testing"

	"kdesel/internal/stats"
)

func column(rows [][]float64, j int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[j]
	}
	return out
}

func TestAllDatasetsShapeAndFiniteness(t *testing.T) {
	wantDims := map[string]int{
		"bike": 16, "forest": 10, "power": 9, "protein": 9, "synthetic": 8,
	}
	for _, name := range Names() {
		rng := rand.New(rand.NewSource(1))
		ds, err := ByName(name, rng, 500)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Rows) != 500 {
			t.Errorf("%s: %d rows, want 500", name, len(ds.Rows))
		}
		if ds.Dims() != wantDims[name] {
			t.Errorf("%s: %d dims, want %d", name, ds.Dims(), wantDims[name])
		}
		for i, r := range ds.Rows {
			for j, v := range r {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: row %d attr %d = %g", name, i, j, v)
				}
			}
		}
	}
	if _, err := ByName("census", rand.New(rand.NewSource(1)), 10); err == nil {
		t.Error("unknown dataset should be rejected")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	for _, name := range Names() {
		a, _ := ByName(name, rand.New(rand.NewSource(9)), 100)
		b, _ := ByName(name, rand.New(rand.NewSource(9)), 100)
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: row %d differs across identical seeds", name, i)
				}
			}
		}
	}
}

func TestBikeCorrelations(t *testing.T) {
	ds := Bike(rand.New(rand.NewSource(2)), 5000)
	temp := column(ds.Rows, 9)
	atemp := column(ds.Rows, 10)
	humidity := column(ds.Rows, 11)
	casual := column(ds.Rows, 13)
	registered := column(ds.Rows, 14)
	count := column(ds.Rows, 15)

	if c := stats.Correlation(temp, atemp); c < 0.85 {
		t.Errorf("temp/atemp correlation = %.2f, want strong", c)
	}
	if c := stats.Correlation(temp, humidity); c > -0.3 {
		t.Errorf("temp/humidity correlation = %.2f, want negative", c)
	}
	// count = casual + registered must hold exactly: a functional
	// dependency a correlated real dataset exhibits.
	for i := range count {
		if math.Abs(count[i]-casual[i]-registered[i]) > 1e-9 {
			t.Fatal("count != casual + registered")
		}
	}
}

func TestForestRanges(t *testing.T) {
	ds := Forest(rand.New(rand.NewSource(3)), 3000)
	for _, r := range ds.Rows {
		if r[1] < 0 || r[1] > 360 {
			t.Fatalf("aspect %g outside [0,360]", r[1])
		}
		for _, hillIdx := range []int{6, 7, 8} {
			if r[hillIdx] < 0 || r[hillIdx] > 255 {
				t.Fatalf("hillshade %g outside [0,255]", r[hillIdx])
			}
		}
	}
	// Road distance correlates with elevation by construction.
	if c := stats.Correlation(column(ds.Rows, 0), column(ds.Rows, 5)); c < 0.2 {
		t.Errorf("elevation/road-distance correlation = %.2f, want positive", c)
	}
}

func TestPowerDiscreteChannels(t *testing.T) {
	ds := Power(rand.New(rand.NewSource(4)), 5000)
	zeros := 0
	for _, r := range ds.Rows {
		for _, subIdx := range []int{6, 7, 8} {
			v := r[subIdx]
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("sub-metering value %g not a non-negative integer", v)
			}
			if v == 0 {
				zeros++
			}
		}
		if r[2] <= 0 {
			t.Fatalf("active power %g not positive", r[2])
		}
	}
	if frac := float64(zeros) / float64(3*len(ds.Rows)); frac < 0.4 {
		t.Errorf("sub-metering zero fraction = %.2f, want spiky/mostly-zero", frac)
	}
	// Voltage anti-correlates with load.
	if c := stats.Correlation(column(ds.Rows, 2), column(ds.Rows, 4)); c > -0.3 {
		t.Errorf("load/voltage correlation = %.2f, want negative", c)
	}
}

func TestProteinSkewAndCorrelation(t *testing.T) {
	ds := Protein(rand.New(rand.NewSource(5)), 5000)
	area := column(ds.Rows, 1)
	if stats.Mean(area) < stats.Median(area) {
		t.Error("surface area should be right-skewed (mean > median)")
	}
	if c := stats.Correlation(column(ds.Rows, 1), column(ds.Rows, 2)); c < 0.5 {
		t.Errorf("total/non-polar area correlation = %.2f, want strong", c)
	}
}

func TestSyntheticClustering(t *testing.T) {
	ds := Synthetic(rand.New(rand.NewSource(6)), 20000, 3, 5, 0.1)
	// All points in the unit cube.
	for _, r := range ds.Rows {
		for _, v := range r {
			if v < 0 || v > 1 {
				t.Fatalf("synthetic point %v escapes the unit cube", r)
			}
		}
	}
	// Clustered data is much denser than uniform somewhere: the max count
	// over a coarse grid must far exceed the uniform expectation.
	const g = 4
	counts := map[[3]int]int{}
	for _, r := range ds.Rows {
		var cell [3]int
		for j := 0; j < 3; j++ {
			c := int(r[j] * g)
			if c == g {
				c = g - 1
			}
			cell[j] = c
		}
		counts[cell]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniformExp := float64(len(ds.Rows)) / (g * g * g)
	if float64(maxCount) < 3*uniformExp {
		t.Errorf("max cell count %d vs uniform expectation %.0f: no clustering visible", maxCount, uniformExp)
	}
}

func TestProject(t *testing.T) {
	ds := Dataset{Name: "x", Rows: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	p, err := ds.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 || p.Rows[0][0] != 3 || p.Rows[0][1] != 1 || p.Rows[1][0] != 6 {
		t.Errorf("projection = %v", p.Rows)
	}
	if _, err := ds.Project([]int{5}); err == nil {
		t.Error("out-of-range projection should be rejected")
	}
	rp, err := ds.RandomProjection(2, rand.New(rand.NewSource(1)))
	if err != nil || rp.Dims() != 2 {
		t.Errorf("random projection = %v, %v", rp, err)
	}
	if _, err := ds.RandomProjection(9, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized random projection should be rejected")
	}
}

// No generated dataset may contain a constant column at experiment sizes:
// a zero-extent dimension poisons every volume-based estimator.
func TestNoConstantColumns(t *testing.T) {
	for _, name := range Names() {
		for _, n := range []int{2000, 8000} {
			ds, err := ByName(name, rand.New(rand.NewSource(11)), n)
			if err != nil {
				t.Fatal(err)
			}
			d := ds.Dims()
			for j := 0; j < d; j++ {
				first := ds.Rows[0][j]
				constant := true
				for _, r := range ds.Rows[1:] {
					if r[j] != first {
						constant = false
						break
					}
				}
				if constant {
					t.Errorf("%s (n=%d): column %d is constant", name, n, j)
				}
			}
		}
	}
}
