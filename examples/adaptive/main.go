// Adaptive: the §6.5 scenario as a runnable demo — an archive-like database
// where new data clusters appear, old ones are deleted, and queries favor
// recent data. The self-tuning estimator (adaptive bandwidth + karma sample
// maintenance + reservoir sampling) tracks the changes; the static
// Scott's-rule model degrades.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"

	"kdesel"
	"kdesel/internal/workload"
)

func main() {
	ev, err := workload.NewEvolving(workload.EvolvingConfig{
		Dims:   3,
		Cycles: 6,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := kdesel.NewTable(3)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ev.Initial {
		if err := tab.Insert(row); err != nil {
			log.Fatal(err)
		}
	}

	adaptive, err := kdesel.Build(tab, kdesel.Config{
		Mode: kdesel.Adaptive, SampleSize: 512, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	heuristic, err := kdesel.Build(tab, kdesel.Config{
		Mode: kdesel.Heuristic, SampleSize: 512, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("window   tuples   heuristic|err|   adaptive|err|   replacements")
	const window = 40
	var errH, errA float64
	qi := 0
	for _, op := range ev.Ops {
		switch op.Kind {
		case workload.OpInsert:
			if err := tab.Insert(op.Row); err != nil {
				log.Fatal(err)
			}
		case workload.OpDeleteRegion:
			if _, err := tab.DeleteWhere(op.Region); err != nil {
				log.Fatal(err)
			}
		case workload.OpQuery:
			actual, _ := tab.Selectivity(op.Query)
			ea, _ := adaptive.Estimate(op.Query)
			eh, _ := heuristic.Estimate(op.Query)
			errA += math.Abs(ea - actual)
			errH += math.Abs(eh - actual)
			// Both receive feedback; only Adaptive acts on it.
			if err := adaptive.Feedback(op.Query, actual); err != nil {
				log.Fatal(err)
			}
			if err := heuristic.Feedback(op.Query, actual); err != nil {
				log.Fatal(err)
			}
			qi++
			if qi%window == 0 {
				fmt.Printf("%-8d %8d %14.4f %15.4f %14d\n",
					qi, tab.Len(), errH/window, errA/window, adaptive.Replacements())
				errH, errA = 0, 0
			}
		}
	}
	fmt.Printf("\nadaptive replaced %d outdated sample points via karma + reservoir maintenance\n",
		adaptive.Replacements())
}
