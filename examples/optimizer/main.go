// Optimizer: why selectivity estimates matter — a miniature cost-based
// query optimizer chooses between an index scan (cheap for selective
// predicates) and a sequential scan (cheap for broad predicates). Plan
// choices driven by the batch-optimized KDE estimator are compared against
// choices driven by the attribute-value-independence (AVI) baseline that
// multiplies per-column histogram estimates — the assumption the paper's
// introduction argues against.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"kdesel"
)

// avi is the attribute-value-independence baseline: one equi-depth
// histogram per column, multiplied together.
type avi struct {
	edges [][]float64 // per column: sorted bucket edges
}

func buildAVI(tab *kdesel.Table, buckets int) *avi {
	d := tab.Dims()
	n := tab.Len()
	a := &avi{edges: make([][]float64, d)}
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = tab.Row(i)[j]
		}
		sort.Float64s(col)
		edges := make([]float64, buckets+1)
		for b := 0; b <= buckets; b++ {
			idx := b * (n - 1) / buckets
			edges[b] = col[idx]
		}
		a.edges[j] = edges
	}
	return a
}

func (a *avi) estimate(q kdesel.Range) float64 {
	sel := 1.0
	for j, edges := range a.edges {
		sel *= columnFraction(edges, q.Lo[j], q.Hi[j])
	}
	return sel
}

// columnFraction estimates the fraction of values in [lo, hi] from
// equi-depth bucket edges with linear interpolation inside buckets.
func columnFraction(edges []float64, lo, hi float64) float64 {
	buckets := len(edges) - 1
	frac := 0.0
	for b := 0; b < buckets; b++ {
		l, u := edges[b], edges[b+1]
		if u < lo || l > hi {
			continue
		}
		if u == l {
			frac += 1.0 / float64(buckets)
			continue
		}
		overlap := (minF(u, hi) - maxF(l, lo)) / (u - l)
		if overlap > 0 {
			frac += overlap / float64(buckets)
		}
	}
	return frac
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// planCost models the optimizer's choice: an index scan costs per matching
// tuple (random I/O), a sequential scan costs per stored tuple.
func planCost(sel float64, rows int, index bool) float64 {
	if index {
		return 4.0 * sel * float64(rows) // random access penalty
	}
	return 1.0 * float64(rows)
}

func choosePlan(sel float64, rows int) string {
	if planCost(sel, rows, true) < planCost(sel, rows, false) {
		return "index"
	}
	return "seqscan"
}

func main() {
	// Strongly correlated columns: AVI's independence assumption is
	// exactly wrong here.
	rng := rand.New(rand.NewSource(17))
	tab, err := kdesel.NewTable(2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		x := rng.Float64() * 100
		if err := tab.Insert([]float64{x, x + rng.NormFloat64()*2}); err != nil {
			log.Fatal(err)
		}
	}

	training := make([]kdesel.Feedback, 100)
	for i := range training {
		q := randomQuery(tab, rng)
		actual, _ := tab.Selectivity(q)
		training[i] = kdesel.Feedback{Query: q, Actual: actual}
	}
	kdeEst, err := kdesel.Build(tab, kdesel.Config{
		Mode: kdesel.Batch, SampleSize: 1024, Seed: 5, Training: training,
	})
	if err != nil {
		log.Fatal(err)
	}
	aviEst := buildAVI(tab, 64)

	rows := tab.Len()
	var kdeCorrect, aviCorrect, kdeRegret, aviRegret float64
	const trials = 300
	for i := 0; i < trials; i++ {
		q := randomQuery(tab, rng)
		actual, _ := tab.Selectivity(q)
		best := choosePlan(actual, rows)
		bestCost := planCost(actual, rows, best == "index")

		kdeSel, _ := kdeEst.Estimate(q)
		kdePlan := choosePlan(kdeSel, rows)
		if kdePlan == best {
			kdeCorrect++
		}
		kdeRegret += planCost(actual, rows, kdePlan == "index") - bestCost

		aviPlan := choosePlan(aviEst.estimate(q), rows)
		if aviPlan == best {
			aviCorrect++
		}
		aviRegret += planCost(actual, rows, aviPlan == "index") - bestCost
	}

	fmt.Printf("plan decisions over %d queries on correlated data:\n\n", trials)
	fmt.Printf("%-22s %14s %18s\n", "estimator", "correct plans", "total cost regret")
	fmt.Printf("%-22s %13.1f%% %18.0f\n", "KDE (batch-optimized)", 100*kdeCorrect/trials, kdeRegret)
	fmt.Printf("%-22s %13.1f%% %18.0f\n", "AVI histograms", 100*aviCorrect/trials, aviRegret)
	fmt.Println("\nthe multidimensional KDE model sees the column correlation that")
	fmt.Println("independent per-column histograms structurally cannot represent.")
}

// randomQuery draws diagonal band queries whose true selectivity straddles
// the index/seqscan cost crossover (selectivity 0.25). Because the box
// follows the correlation, AVI's independence assumption underestimates it
// badly — exactly the failure mode that flips plan choices.
func randomQuery(tab *kdesel.Table, rng *rand.Rand) kdesel.Range {
	c := tab.Row(rng.Intn(tab.Len()))
	wx := 6 + rng.Float64()*34
	wy := wx + 6 // the band tracks y ≈ x, so the box captures the diagonal
	return kdesel.NewRange(
		[]float64{c[0] - wx, c[1] - wy},
		[]float64{c[0] + wx, c[1] + wy},
	)
}
