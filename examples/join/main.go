// Join: the paper's future-work direction (§8) made concrete — estimating
// join selectivities with KDE models. Two scenarios:
//
//  1. A key–foreign-key join (orders → customers): a KDE is built over a
//     sample of the join result and answers range predicates spanning both
//     relations.
//  2. A band join (sensor readings within ±ε of calibration points): the
//     Gaussian closed form turns two per-relation KDEs into a join
//     selectivity without materializing anything.
//
// Run with: go run ./examples/join
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kdesel"
	"kdesel/internal/join"
	"kdesel/internal/kde"
)

func main() {
	rng := rand.New(rand.NewSource(41))

	// --- Scenario 1: PK-FK join ------------------------------------------
	// customers(id, credit_score), orders(customer_id, amount): big
	// spenders have high scores, so cross-relation predicates correlate.
	customers, err := kdesel.NewTable(2)
	if err != nil {
		log.Fatal(err)
	}
	const nCustomers = 500
	scores := make([]float64, nCustomers)
	for i := 0; i < nCustomers; i++ {
		scores[i] = 300 + rng.Float64()*550
		if err := customers.Insert([]float64{float64(i), scores[i]}); err != nil {
			log.Fatal(err)
		}
	}
	orders, err := kdesel.NewTable(2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		c := rng.Intn(nCustomers)
		amount := math.Max(5, (scores[c]-250)/3+rng.NormFloat64()*30)
		if err := orders.Insert([]float64{float64(c), amount}); err != nil {
			log.Fatal(err)
		}
	}

	est, err := join.BuildEstimator(orders, customers, 0, 0, 1024, rng)
	if err != nil {
		log.Fatal(err)
	}
	// Predicate over the join: orders above 150 by customers above 700
	// (one-sided predicates use generous finite bounds).
	q := kdesel.NewRange(
		[]float64{-1e6, 150, -1e6, 700},
		[]float64{1e6, 1e6, 1e6, 1e6},
	)
	got, err := est.Selectivity(q)
	if err != nil {
		log.Fatal(err)
	}
	actual := exactJoinSelectivity(orders, customers, scores, q)
	fmt.Println("PK-FK join (orders ⋈ customers):")
	fmt.Printf("  P(amount > 150 AND credit_score > 700):  KDE %.4f   exact %.4f\n\n", got, actual)

	// --- Scenario 2: band join -------------------------------------------
	// readings.value within ±2 of calibration.setpoint.
	mkKDE := func(gen func() float64, n int) ([]float64, *kde.Estimator) {
		vals := make([]float64, n)
		rows := make([][]float64, n)
		for i := range rows {
			vals[i] = gen()
			rows[i] = []float64{vals[i]}
		}
		e, _ := kde.New(1, nil)
		if err := e.SetSampleRows(rows[:min(512, n)]); err != nil {
			log.Fatal(err)
		}
		if err := e.UseScottBandwidth(); err != nil {
			log.Fatal(err)
		}
		return vals, e
	}
	readings, rKDE := mkKDE(func() float64 { return rng.NormFloat64()*15 + 50 }, 8000)
	setpoints, sKDE := mkKDE(func() float64 { return float64(10 + rng.Intn(9)*10) }, 300)

	fmt.Println("band join (|reading - setpoint| <= ε), closed-form Gaussian integral:")
	fmt.Printf("  %6s %12s %12s\n", "ε", "KDE", "exact")
	for _, eps := range []float64{0.5, 2, 5, 15} {
		got, err := join.BandSelectivity(rKDE, sKDE, 0, 0, eps)
		if err != nil {
			log.Fatal(err)
		}
		exact := exactBand(readings, setpoints, eps)
		fmt.Printf("  %6.1f %12.5f %12.5f\n", eps, got, exact)
	}
	sz, err := join.EquiJoinSize(rKDE, sKDE, 0, 0, len(readings), len(setpoints), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequi-join size at tolerance 0.5: estimated %.0f pairs (exact %.0f)\n",
		sz, exactBand(readings, setpoints, 0.25)*float64(len(readings)*len(setpoints)))
}

func exactJoinSelectivity(orders, customers *kdesel.Table, scores []float64, q kdesel.Range) float64 {
	matches, total := 0, 0
	for i := 0; i < orders.Len(); i++ {
		r := orders.Row(i)
		joined := []float64{r[0], r[1], r[0], scores[int(r[0])]}
		total++
		if q.Contains(joined) {
			matches++
		}
	}
	return float64(matches) / float64(total)
}

func exactBand(a, b []float64, eps float64) float64 {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if math.Abs(x-y) <= eps {
				n++
			}
		}
	}
	return float64(n) / float64(len(a)*len(b))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
