// Quickstart: build a feedback-optimized KDE selectivity estimator over a
// correlated two-dimensional table and compare its estimates against the
// naïve Scott's-rule baseline and the exact selectivities.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kdesel"
)

func main() {
	// A correlated dataset: y follows x with noise, plus a dense hotspot.
	rng := rand.New(rand.NewSource(7))
	tab, err := kdesel.NewTable(2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		var row []float64
		if rng.Float64() < 0.3 { // hotspot around (8, 8)
			row = []float64{8 + rng.NormFloat64()*0.5, 8 + rng.NormFloat64()*0.5}
		} else {
			x := rng.Float64() * 10
			row = []float64{x, x + rng.NormFloat64()}
		}
		if err := tab.Insert(row); err != nil {
			log.Fatal(err)
		}
	}

	// Collect training feedback: queries a user workload might issue,
	// paired with the selectivities the database observed.
	training := make([]kdesel.Feedback, 100)
	for i := range training {
		c := tab.Row(rng.Intn(tab.Len()))
		w := 0.5 + rng.Float64()*2
		q := kdesel.NewRange(
			[]float64{c[0] - w, c[1] - w},
			[]float64{c[0] + w, c[1] + w},
		)
		actual, err := tab.Selectivity(q)
		if err != nil {
			log.Fatal(err)
		}
		training[i] = kdesel.Feedback{Query: q, Actual: actual}
	}

	// Two estimators over the same sample: the naïve baseline and the
	// batch-optimized model of the paper's §3.
	heuristic, err := kdesel.Build(tab, kdesel.Config{
		Mode: kdesel.Heuristic, SampleSize: 1024, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := kdesel.Build(tab, kdesel.Config{
		Mode: kdesel.Batch, SampleSize: 1024, Seed: 1, Training: training,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query                                 actual  heuristic      batch")
	var errH, errB float64
	const tests = 200
	for i := 0; i < tests; i++ {
		c := tab.Row(rng.Intn(tab.Len()))
		w := 0.5 + rng.Float64()*2
		q := kdesel.NewRange(
			[]float64{c[0] - w, c[1] - w},
			[]float64{c[0] + w, c[1] + w},
		)
		actual, _ := tab.Selectivity(q)
		eh, _ := heuristic.Estimate(q)
		eb, _ := batch.Estimate(q)
		errH += math.Abs(eh - actual)
		errB += math.Abs(eb - actual)
		if i < 8 {
			fmt.Printf("%-36s %8.4f %10.4f %10.4f\n", q, actual, eh, eb)
		}
	}
	fmt.Printf("\navg |error| over %d queries:  heuristic %.4f   batch %.4f  (%.1fx better)\n",
		tests, errH/tests, errB/tests, errH/errB)
	fmt.Printf("heuristic bandwidth: %v\n", compact(heuristic.Bandwidth()))
	fmt.Printf("optimized bandwidth: %v\n", compact(batch.Bandwidth()))
}

func compact(h []float64) []string {
	out := make([]string, len(h))
	for i, v := range h {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}
