// GPU: the co-processor story of paper §5 — the same estimator runs on a
// simulated GPU and a simulated multi-core CPU, and the device accounting
// shows where the time goes: the one-time sample transfer, the tiny
// per-query traffic (bounds in, scalars out), and the latency floor that
// dominates small models before linear scaling takes over.
//
// Run with: go run ./examples/gpu
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"kdesel"
	"kdesel/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(23))
	tab, err := kdesel.NewTable(8)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 140000; i++ {
		row := make([]float64, 8)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if err := tab.Insert(row); err != nil {
			log.Fatal(err)
		}
	}
	qs, err := workload.Generate(tab, workload.UV, 50, workload.Config{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-query estimation overhead (simulated device clock), 8-D model:")
	fmt.Printf("%10s %14s %14s %9s\n", "points", "gpu", "cpu", "speedup")
	for _, size := range []int{1024, 4096, 16384, 65536, 131072} {
		gpuTime := measure(tab, qs, size, kdesel.GPUProfile())
		cpuTime := measure(tab, qs, size, kdesel.CPUProfile())
		fmt.Printf("%10d %14s %14s %8.1fx\n",
			size, gpuTime, cpuTime, float64(cpuTime)/float64(gpuTime))
	}

	// Transfer accounting: the sample moves once; queries move bytes, not
	// buffers.
	dev, _ := kdesel.NewDevice(kdesel.GPUProfile())
	est, err := kdesel.Build(tab, kdesel.Config{SampleSize: 65536, Seed: 1, Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	loaded := dev.Stats()
	for _, q := range qs {
		if _, err := est.Estimate(q); err != nil {
			log.Fatal(err)
		}
	}
	after := dev.Stats()
	fmt.Printf("\ntransfer accounting (65536-point model, %d queries):\n", len(qs))
	fmt.Printf("  sample upload:        %10d bytes (once, at ANALYZE)\n", loaded.BytesToDevice)
	fmt.Printf("  query-time to device: %10d bytes (%d per query — just the bounds)\n",
		after.BytesToDevice-loaded.BytesToDevice,
		(after.BytesToDevice-loaded.BytesToDevice)/int64(len(qs)))
	fmt.Printf("  query-time from dev:  %10d bytes (the estimates)\n",
		after.BytesFromDevice-loaded.BytesFromDevice)
	fmt.Printf("  kernel launches:      %10d\n", after.KernelLaunches-loaded.KernelLaunches)
}

func measure(tab *kdesel.Table, qs []kdesel.Range, size int, profile kdesel.DeviceProfile) time.Duration {
	dev, err := kdesel.NewDevice(profile)
	if err != nil {
		log.Fatal(err)
	}
	est, err := kdesel.Build(tab, kdesel.Config{SampleSize: size, Seed: 1, Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	dev.ResetStats()
	for _, q := range qs {
		if _, err := est.Estimate(q); err != nil {
			log.Fatal(err)
		}
	}
	return dev.Clock() / time.Duration(len(qs))
}
