package kdesel_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"kdesel"
)

// TestFacadeEndToEnd exercises the public API exactly as README.md's
// quickstart describes: load, build, estimate, feed back.
func TestFacadeEndToEnd(t *testing.T) {
	tab, err := kdesel.NewTable(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		c := float64(rng.Intn(2)) * 4
		if err := tab.Insert([]float64{c + rng.NormFloat64()*0.3, c + rng.NormFloat64()*0.3}); err != nil {
			t.Fatal(err)
		}
	}
	est, err := kdesel.Build(tab, kdesel.Config{Mode: kdesel.Adaptive, SampleSize: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := kdesel.NewRange([]float64{-1, -1}, []float64{1, 1})
	before, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	actual, _ := tab.Selectivity(q)

	// Drive the self-tuning loop: estimate, execute, feed back.
	for i := 0; i < 300; i++ {
		row := tab.Row(rng.Intn(tab.Len()))
		w := 0.5 + rng.Float64()*1.5
		fq := kdesel.NewRange(
			[]float64{row[0] - w, row[1] - w},
			[]float64{row[0] + w, row[1] + w},
		)
		if _, err := est.Estimate(fq); err != nil {
			t.Fatal(err)
		}
		fa, _ := tab.Selectivity(fq)
		if err := est.Feedback(fq, fa); err != nil {
			t.Fatal(err)
		}
	}
	after, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-actual) > math.Abs(before-actual) {
		t.Errorf("feedback made the estimate worse: |%g-%g| -> |%g-%g|",
			before, actual, after, actual)
	}
	if math.Abs(after-actual) > 0.15 {
		t.Errorf("trained estimate %g vs actual %g", after, actual)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	tab, _ := kdesel.NewTable(1)
	for i := 0; i < 200; i++ {
		_ = tab.Insert([]float64{float64(i % 50)})
	}
	est, err := kdesel.Build(tab, kdesel.Config{SampleSize: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := kdesel.Load(&buf, tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := kdesel.NewRange([]float64{10}, []float64{30})
	a, _ := est.Estimate(q)
	b, _ := loaded.Estimate(q)
	if a != b {
		t.Errorf("loaded model diverges: %g vs %g", a, b)
	}
}

func TestFacadeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pk, _ := kdesel.NewTable(1)
	for i := 0; i < 50; i++ {
		_ = pk.Insert([]float64{float64(i)})
	}
	fk, _ := kdesel.NewTable(1)
	for i := 0; i < 500; i++ {
		_ = fk.Insert([]float64{float64(rng.Intn(50))})
	}
	je, err := kdesel.BuildJoinEstimator(fk, pk, 0, 0, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := je.Selectivity(kdesel.NewRange([]float64{-1000, -1000}, []float64{1000, 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-1) > 0.05 {
		t.Errorf("whole-space join selectivity = %g, want ~1", sel)
	}
}

func TestFacadeDevice(t *testing.T) {
	dev, err := kdesel.NewDevice(kdesel.GPUProfile())
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := kdesel.NewTable(1)
	for i := 0; i < 100; i++ {
		_ = tab.Insert([]float64{float64(i)})
	}
	est, err := kdesel.Build(tab, kdesel.Config{Device: dev, SampleSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(kdesel.NewRange([]float64{10}, []float64{20})); err != nil {
		t.Fatal(err)
	}
	if dev.Clock() == 0 {
		t.Error("device clock did not advance")
	}
	if kdesel.CPUProfile().Parallelism >= kdesel.GPUProfile().Parallelism {
		t.Error("CPU profile should have less parallelism than GPU")
	}
}
