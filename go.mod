module kdesel

go 1.22
